package cluster_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cluster"
	"thematicep/internal/event"
	"thematicep/internal/faultinject"
	"thematicep/internal/wal"
)

// elasticNode is one gossip-bootstrapped member that can be killed and
// restarted mid-test (unlike the static-mesh testNode cleanup).
type elasticNode struct {
	b    *broker.Broker
	srv  *broker.Server
	node *cluster.Node
	addr string
	once sync.Once
}

// stop tears the member down; safe to call twice (tests kill nodes
// explicitly and the cleanup sweeps the survivors).
func (en *elasticNode) stop() {
	en.once.Do(func() {
		en.node.Close()
		en.srv.Close()
		en.b.Close()
	})
}

// elasticConfig tunes failure detection fast enough for a short test:
// quick heartbeats spread gossip, a sub-second suspect timeout converts
// missed heartbeats into deaths, and a small breaker threshold produces
// the down-observations that start suspicion.
func elasticConfig(self string, seeds []string, dial func(string) (net.Conn, error)) cluster.Config {
	return cluster.Config{
		Self:              self,
		Seeds:             seeds,
		SuspectTimeout:    400 * time.Millisecond,
		ReconnectMin:      5 * time.Millisecond,
		ReconnectMax:      50 * time.Millisecond,
		WriteTimeout:      200 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
		BreakerThreshold:  2,
		BreakerCooldown:   50 * time.Millisecond,
		Dial:              dial,
	}
}

// startElastic brings up one member. listen is "127.0.0.1:0" for a fresh
// port or a previous member's address for a restart-in-place; seeds
// bootstrap gossip (empty = founding member). Extra broker options wire in
// a journal for durability tests.
func startElastic(t *testing.T, listen string, seeds []string, dial func(string) (net.Conn, error), bopts ...broker.Option) *elasticNode {
	t.Helper()
	opts := append([]broker.Option{broker.WithReplayBuffer(0)}, bopts...)
	b := broker.New(exactMatcher(), opts...)
	srv := broker.NewServer(b)
	addr, err := srv.Listen(listen)
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.New(b, elasticConfig(addr.String(), seeds, dial))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetBackend(node)
	srv.SetPeerHandler(node)
	node.Start()
	en := &elasticNode{b: b, srv: srv, node: node, addr: addr.String()}
	t.Cleanup(en.stop)
	return en
}

func tcpDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second)
}

// memberStates reports a node's view as addr -> state string.
func memberStates(en *elasticNode) map[string]string {
	out := make(map[string]string)
	for _, m := range en.node.Members() {
		out[m.Node] = m.State.String()
	}
	return out
}

// aliveCount counts members this node believes alive.
func aliveCount(en *elasticNode) int {
	n := 0
	for _, s := range memberStates(en) {
		if s == "alive" {
			n++
		}
	}
	return n
}

// allSee waits until every listed node's view has exactly want alive
// members and a fully connected link set to the other live members.
func allSee(t *testing.T, what string, nodes []*elasticNode, want int) {
	t.Helper()
	waitFor(t, what, func() bool {
		for _, en := range nodes {
			if aliveCount(en) != want {
				return false
			}
			if st := en.node.Stats(); st.PeersConnected < want-1 {
				return false
			}
		}
		return true
	})
}

// TestGossipJoinFromSingleSeed: B and C know only the seed A, yet must
// discover each other transitively through A's gossip and form a full
// mesh — the rings converge without any member holding a complete static
// peer list.
func TestGossipJoinFromSingleSeed(t *testing.T) {
	a := startElastic(t, "127.0.0.1:0", nil, tcpDial)
	b := startElastic(t, "127.0.0.1:0", []string{a.addr}, tcpDial)
	c := startElastic(t, "127.0.0.1:0", []string{a.addr}, tcpDial)

	allSee(t, "3-member convergence from one seed", []*elasticNode{a, b, c}, 3)

	// B and C never had each other configured; the link is gossip-built.
	if b.node.Stats().Peers != 2 {
		t.Errorf("B tracks %d peer links, want 2 (A static + C discovered)", b.node.Stats().Peers)
	}
	// Every node computes the same ring.
	tag := "convergence-probe"
	owner := a.node.Ring().Owner(tag)
	for _, en := range []*elasticNode{b, c} {
		if got := en.node.Ring().Owner(tag); got != owner {
			t.Errorf("%s ring owner for %q = %q, want %q", en.addr, tag, got, owner)
		}
	}
}

// TestRebalanceHandoffOnJoin: a federated subscription whose theme shard
// moves to a newly joined member must be handed off — registered on the
// new owner, unregistered from the old — and deliveries must stay exactly
// once through the transition (dup suppression during handoff).
func TestRebalanceHandoffOnJoin(t *testing.T) {
	a := startElastic(t, "127.0.0.1:0", nil, tcpDial)
	b := startElastic(t, "127.0.0.1:0", []string{a.addr}, tcpDial)
	allSee(t, "2-member convergence", []*elasticNode{a, b}, 2)

	// Reserve C's port first so we can pick a tag whose ownership will move
	// B -> C when C joins.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cAddr := probe.Addr().String()
	probe.Close()
	ring2 := cluster.NewRing([]string{a.addr, b.addr}, 0)
	ring3 := cluster.NewRing([]string{a.addr, b.addr, cAddr}, 0)
	var tag string
	for i := 0; i < 20000; i++ {
		cand := fmt.Sprintf("moving-theme-%d", i)
		if ring2.Owner(cand) == b.addr && ring3.Owner(cand) == cAddr {
			tag = cand
			break
		}
	}
	if tag == "" {
		t.Fatal("no tag moves B -> C in 20000 candidates")
	}

	sub := &event.Subscription{
		Theme:      []string{tag},
		Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
	}
	h, err := a.node.SubscribeHandle(sub)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	waitFor(t, "remote registration on the old owner B", func() bool {
		return b.b.Stats().Subscribers == 1
	})

	// Tally deliveries by event ID while the handoff happens underneath.
	var mu sync.Mutex
	counts := make(map[string]int)
	go func() {
		for d := range h.C() {
			mu.Lock()
			counts[d.Event.ID]++
			mu.Unlock()
		}
	}()
	publish := func(en *elasticNode, id string) {
		t.Helper()
		if err := en.node.Publish(&event.Event{
			ID:     id,
			Theme:  []string{tag},
			Tuples: []event.Tuple{{Attr: "type", Value: "parking event"}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Publish through the join so some events straddle the window where
	// both B and C may briefly host the registration.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			publish(a, fmt.Sprintf("straddle-%d", i))
			time.Sleep(2 * time.Millisecond)
		}
	}()
	c := startElastic(t, cAddr, []string{a.addr}, tcpDial)
	<-done

	allSee(t, "3-member convergence after join", []*elasticNode{a, b, c}, 3)
	waitFor(t, "handoff: registered on C, unregistered from B", func() bool {
		return c.b.Stats().Subscribers == 1 && b.b.Stats().Subscribers == 0
	})

	// Post-handoff traffic flows through the new owner, exactly once —
	// published at B, whose ring now points at C.
	publish(b, "post-handoff")
	waitFor(t, "post-handoff delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return counts["post-handoff"] >= 1
	})
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for id, n := range counts {
		if n > 1 {
			t.Errorf("event %s delivered %d times across the handoff", id, n)
		}
	}
	if counts["post-handoff"] != 1 {
		t.Errorf("post-handoff delivered %d times, want exactly 1", counts["post-handoff"])
	}
}

// TestCrashSuspectDeadRejoin: a killed member is suspected (breaker
// evidence), declared dead after the timeout, dropped from the ring and
// the link tables of the members that discovered it by gossip — then a
// restart at the same address refutes the death rumor with a bumped
// incarnation and rejoins.
func TestCrashSuspectDeadRejoin(t *testing.T) {
	a := startElastic(t, "127.0.0.1:0", nil, tcpDial)
	b := startElastic(t, "127.0.0.1:0", []string{a.addr}, tcpDial)
	c := startElastic(t, "127.0.0.1:0", []string{a.addr}, tcpDial)
	allSee(t, "3-member convergence", []*elasticNode{a, b, c}, 3)

	cAddr := c.addr
	c.stop()

	// Suspicion then death propagates to both survivors; the dead member
	// leaves the ring and — being a gossip discovery, not a configured
	// seed — its links are dropped, so no half-open probes target a
	// departed peer forever.
	waitFor(t, "survivors declare C dead", func() bool {
		return memberStates(a)[cAddr] == "dead" && memberStates(b)[cAddr] == "dead"
	})
	waitFor(t, "C's link dropped on the survivors", func() bool {
		_, aHas := a.node.PeerStates()[cAddr]
		_, bHas := b.node.PeerStates()[cAddr]
		return !aHas && !bHas
	})
	for _, tn := range []*elasticNode{a, b} {
		for i := 0; i < 100; i++ {
			if owner := tn.node.Ring().Owner(fmt.Sprintf("t-%d", i)); owner == cAddr {
				t.Fatalf("%s still routes theme t-%d to the dead member", tn.addr, i)
			}
		}
	}
	var inc uint64
	for _, m := range a.node.Members() {
		if m.Node == cAddr {
			inc = m.Incarnation
		}
	}

	// Restart in place: the new process starts at incarnation 1, hears the
	// death rumor about its own address, and must refute it by announcing a
	// higher incarnation.
	c2 := startElastic(t, cAddr, []string{a.addr}, tcpDial)
	allSee(t, "rejoin after restart", []*elasticNode{a, b, c2}, 3)
	for _, m := range a.node.Members() {
		if m.Node == cAddr && m.Incarnation <= inc {
			t.Errorf("rejoined member incarnation %d, want > %d (death refutation)", m.Incarnation, inc)
		}
	}
}

// TestSubscribeRacingRingChange: subscriptions registered concurrently
// with a member join must land on the post-join owners — every one of
// them is publishable-to exactly once after convergence, whichever side
// of the ring swap its registration raced.
func TestSubscribeRacingRingChange(t *testing.T) {
	a := startElastic(t, "127.0.0.1:0", nil, tcpDial)
	b := startElastic(t, "127.0.0.1:0", []string{a.addr}, tcpDial)
	allSee(t, "2-member convergence", []*elasticNode{a, b}, 2)

	const subCount = 24
	var mu sync.Mutex
	counts := make(map[string]int)
	handles := make([]broker.SubHandle, subCount)

	// Half the subscribes land before the join starts, half race it.
	// Themes route; predicates match. Each subscription gets a distinct
	// predicate so its event is delivered to it alone.
	subscribeOne := func(i int) {
		h, err := a.node.SubscribeHandle(&event.Subscription{
			Theme:      []string{fmt.Sprintf("race-theme-%d", i)},
			Predicates: []event.Predicate{{Attr: "type", Value: fmt.Sprintf("race-kind-%d", i)}},
		})
		if err != nil {
			t.Error(err)
			return
		}
		handles[i] = h
		go func() {
			for d := range h.C() {
				mu.Lock()
				counts[d.Event.ID]++
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < subCount/2; i++ {
		subscribeOne(i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := subCount / 2; i < subCount; i++ {
			subscribeOne(i)
		}
	}()
	c := startElastic(t, "127.0.0.1:0", []string{a.addr}, tcpDial)
	wg.Wait()
	allSee(t, "3-member convergence", []*elasticNode{a, b, c}, 3)
	for _, h := range handles {
		if h != nil {
			defer h.Close()
		}
	}

	// Convergence: each non-self owner hosts exactly its share of remote
	// copies under the final ring.
	ring := cluster.NewRing([]string{a.addr, b.addr, c.addr}, 0)
	want := map[string]int{}
	for i := 0; i < subCount; i++ {
		if o := ring.Owner(fmt.Sprintf("race-theme-%d", i)); o != a.addr {
			want[o]++
		}
	}
	waitFor(t, "remote registrations settle on the post-join owners", func() bool {
		return b.b.Stats().Subscribers == want[b.addr] && c.b.Stats().Subscribers == want[c.addr]
	})

	// Every subscription is reachable: publish one event per theme at B
	// and C alternately; each must arrive exactly once.
	for i := 0; i < subCount; i++ {
		src := b
		if i%2 == 1 {
			src = c
		}
		if err := src.node.Publish(&event.Event{
			ID:     fmt.Sprintf("race-ev-%d", i),
			Theme:  []string{fmt.Sprintf("race-theme-%d", i)},
			Tuples: []event.Tuple{{Attr: "type", Value: fmt.Sprintf("race-kind-%d", i)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "every racing subscription delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < subCount; i++ {
			if counts[fmt.Sprintf("race-ev-%d", i)] < 1 {
				return false
			}
		}
		return true
	})
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for id, n := range counts {
		if n != 1 {
			t.Errorf("event %s delivered %d times, want exactly 1", id, n)
		}
	}
}

// TestElasticChaosSoak is the elastic-cluster acceptance soak: a gossip
// federation under injected faults cycles through a partition, a live
// join, and a kill-and-restart of a WAL-backed member. Throughout: no
// event is ever delivered twice; after each disruption heals, a sentinel
// event arrives exactly once; every breaker re-closes; and the restarted
// member serves its WAL-recovered subscription.
func TestElasticChaosSoak(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:        7,
		LatencyMax:  300 * time.Microsecond,
		StallProb:   0.001,
		StallFor:    80 * time.Millisecond,
		PartialProb: 0.001,
		ResetProb:   0.001,
		CorruptProb: 0.002,
	})
	dial := inj.Dialer(tcpDial)

	a := startElastic(t, "127.0.0.1:0", nil, dial)
	b := startElastic(t, "127.0.0.1:0", []string{a.addr}, dial)

	// C is the durable member: its broker journals registrations to a WAL.
	dataDir := t.TempDir()
	wlog, _, err := wal.Open(dataDir, wal.Options{Fsync: wal.FsyncPolicy{Never: true}})
	if err != nil {
		t.Fatal(err)
	}
	c := startElastic(t, "127.0.0.1:0", []string{a.addr}, dial, broker.WithJournal(wlog))
	allSee(t, "3-member bootstrap", []*elasticNode{a, b, c}, 3)

	tagB := findTag(t, a.node.Ring(), b.addr)
	tagC := findTag(t, a.node.Ring(), c.addr)
	sub := &event.Subscription{
		ID:         "soak-sub",
		Theme:      []string{tagB, tagC},
		Predicates: []event.Predicate{{Attr: "type", Value: "parking event"}},
	}
	h, err := c.node.SubscribeHandle(sub)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "remote registration on B", func() bool {
		return b.b.Stats().Subscribers == 1
	})

	var mu sync.Mutex
	counts := make(map[string]int)
	drain := func(h broker.SubHandle) {
		go func() {
			for d := range h.C() {
				mu.Lock()
				counts[d.Event.ID]++
				mu.Unlock()
			}
		}()
	}
	drain(h)
	count := func(id string) int {
		mu.Lock()
		defer mu.Unlock()
		return counts[id]
	}
	publish := func(id string) {
		t.Helper()
		if err := a.node.Publish(&event.Event{
			ID:    id,
			Theme: []string{tagB, tagC},
			Tuples: []event.Tuple{
				{Attr: "type", Value: "parking event"},
				{Attr: "spot", Value: id},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := func(phase string) {
		t.Helper()
		publish(phase)
		waitFor(t, phase+" sentinel delivery", func() bool { return count(phase) >= 1 })
	}

	// Phase 1 — chaos while connected.
	for i := 0; i < 100; i++ {
		publish(fmt.Sprintf("chaos-%d", i))
		if i%10 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	sentinel("sentinel-chaos")

	// Phase 2 — partition: breakers trip, forwards shed, members go
	// suspect. SuspectTimeout outlasts the partition, so nobody is
	// declared dead and the ring stays stable.
	inj.Partition(true)
	waitFor(t, "A's breakers open under partition", func() bool {
		for _, s := range a.node.PeerStates() {
			if s != cluster.BreakerOpen {
				return false
			}
		}
		return true
	})
	for i := 0; i < 30; i++ {
		publish(fmt.Sprintf("part-%d", i))
	}
	if a.node.Stats().ForwardsShed == 0 {
		t.Error("no forwards shed during the partition")
	}

	// Phase 3 — heal: breakers re-close, suspicion is refuted, remote
	// registrations reconcile, traffic resumes exactly once.
	inj.Partition(false)
	waitFor(t, "breakers re-closed and mesh reconnected", func() bool {
		for _, en := range []*elasticNode{a, b, c} {
			st := en.node.Stats()
			if st.PeersConnected < 2 || st.PeersOpen != 0 {
				return false
			}
		}
		return true
	})
	allSee(t, "all alive after heal", []*elasticNode{a, b, c}, 3)
	waitFor(t, "remote re-registration on B after heal", func() bool {
		return b.b.Stats().Subscribers == 1
	})
	sentinel("sentinel-heal")

	// Phase 4 — live join: D enters through the seed, the ring rebalances,
	// and delivery stays exactly-once through the handoff.
	d := startElastic(t, "127.0.0.1:0", []string{a.addr}, dial)
	allSee(t, "4-member convergence after join", []*elasticNode{a, b, c, d}, 4)
	for i := 0; i < 50; i++ {
		publish(fmt.Sprintf("join-%d", i))
	}
	waitFor(t, "post-join registrations settle", func() bool {
		// The subscription's home is C; each current owner of tagB/tagC
		// (minus C itself) must host exactly one remote copy.
		owners := map[string]bool{}
		for _, o := range c.node.Ring().Owners([]string{tagB, tagC}) {
			if o != c.addr {
				owners[o] = true
			}
		}
		for _, en := range []*elasticNode{a, b, d} {
			wantSubs := 0
			if owners[en.addr] {
				wantSubs = 1
			}
			if en.b.Stats().Subscribers != wantSubs {
				return false
			}
		}
		return true
	})
	sentinel("sentinel-join")

	// Phase 5 — kill -9 the durable member: Seal freezes the WAL exactly
	// like the daemon's crash path, so the teardown's unsubscribe storm
	// cannot erase the registration, then the process state is torn down.
	wlog.Seal()
	c.stop()
	wlog.Close()

	// Restart in place with the same data dir: replay must recover the
	// subscription, the node re-registers it before serving, and the
	// revived member refutes its own death rumor to rejoin.
	wlog2, recovered, err := wal.Open(dataDir, wal.Options{Fsync: wal.FsyncPolicy{Never: true}})
	if err != nil {
		t.Fatalf("WAL reopen after crash: %v", err)
	}
	defer wlog2.Close()
	rsub := recovered.Subs["soak-sub"]
	if rsub == nil {
		t.Fatalf("subscription not recovered from WAL; state has %d subs", len(recovered.Subs))
	}
	c2 := startElastic(t, c.addr, []string{a.addr}, dial, broker.WithJournal(wlog2))
	h2, err := c2.node.SubscribeHandle(rsub)
	if err != nil {
		t.Fatalf("re-registering recovered subscription: %v", err)
	}
	defer h2.Close()
	drain(h2)

	allSee(t, "restarted member rejoined", []*elasticNode{a, b, c2, d}, 4)
	waitFor(t, "recovered registration reconciled to remote owners", func() bool {
		owners := map[string]bool{}
		for _, o := range c2.node.Ring().Owners([]string{tagB, tagC}) {
			if o != c2.addr {
				owners[o] = true
			}
		}
		for _, en := range []*elasticNode{a, b, d} {
			wantSubs := 0
			if owners[en.addr] {
				wantSubs = 1
			}
			if en.b.Stats().Subscribers != wantSubs {
				return false
			}
		}
		return true
	})
	sentinel("sentinel-recovery")

	// Final settle, then the global assertions.
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	dupes := 0
	for id, n := range counts {
		if n > 1 {
			dupes++
			t.Errorf("event %s delivered %d times", id, n)
		}
	}
	total := len(counts)
	mu.Unlock()
	for _, phase := range []string{"sentinel-chaos", "sentinel-heal", "sentinel-join", "sentinel-recovery"} {
		if got := count(phase); got != 1 {
			t.Errorf("%s delivered %d times, want exactly 1", phase, got)
		}
	}
	for _, en := range []*elasticNode{a, b, c2, d} {
		for peerID, s := range en.node.PeerStates() {
			if s != cluster.BreakerClosed {
				t.Errorf("%s breaker to %s finished %v, want closed", en.addr, peerID, s)
			}
		}
	}
	if st := wlog2.Stats(); st.Replayed == 0 && st.LiveSubs == 0 {
		t.Error("restarted WAL shows no replayed state")
	}
	t.Logf("soak: %d distinct events delivered, %d dupes, injector %+v", total, dupes, inj.Stats())
}
