package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position. The zero value is closed
// (traffic flows).
type BreakerState int32

const (
	// BreakerClosed: the link is healthy; forwards queue normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed and one probe connection is
	// being attempted; forwards still shed until it succeeds.
	BreakerHalfOpen
	// BreakerOpen: the peer is considered down; dials pause for the
	// cooldown and forwards shed immediately instead of queueing.
	BreakerOpen
)

// String renders the state for logs and tests.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// breaker is a per-peer circuit breaker over connection-level failures
// (failed dials, failed hellos, link deaths). It trips open after
// Threshold consecutive failures; after Cooldown one half-open probe is
// allowed, and a successful probe re-closes it. It is safe for concurrent
// use: the run loop drives Allow/Success/Failure while enqueue and the
// metrics scraper read State.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	trips    uint64
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a connection attempt may proceed. While open it
// returns false until the cooldown elapses, then transitions to half-open
// and admits exactly one probe; further probes are refused until that one
// resolves via Success or Failure.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// Success records a healthy connection: the breaker closes and the
// consecutive-failure count resets.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
}

// Failure records one connection-level failure. A closed breaker trips
// open at the threshold; a half-open probe failure re-opens immediately
// (and restarts the cooldown).
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case BreakerClosed:
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	case BreakerOpen:
		// Already open (e.g. a racing link death); keep the original
		// cooldown clock so probes are not starved by late failures.
	}
}

// State returns the breaker's current position.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has transitioned to open.
func (b *breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
