package cluster

import (
	"testing"
	"time"
)

// TestBreakerStateMachine drives the closed → open → half-open → closed
// cycle with a fake clock and pins the transition rules.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	bk := newBreaker(3, time.Second, func() time.Time { return now })

	if got := bk.State(); got != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	if !bk.Allow() {
		t.Fatal("closed breaker must allow")
	}

	// Failures below the threshold keep it closed; a success resets the streak.
	bk.Failure()
	bk.Failure()
	bk.Success()
	bk.Failure()
	bk.Failure()
	if got := bk.State(); got != BreakerClosed {
		t.Fatalf("state after interrupted streak = %v, want closed", got)
	}

	// The threshold-th consecutive failure trips it open.
	bk.Failure()
	if got := bk.State(); got != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", got)
	}
	if bk.Trips() != 1 {
		t.Errorf("trips = %d, want 1", bk.Trips())
	}
	if bk.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(time.Second)
	if !bk.Allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if got := bk.State(); got != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if bk.Allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe failure re-opens and restarts the cooldown.
	bk.Failure()
	if got := bk.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if bk.Trips() != 2 {
		t.Errorf("trips = %d, want 2", bk.Trips())
	}
	if bk.Allow() {
		t.Fatal("probe admitted immediately after a failed probe")
	}

	// Second probe succeeds: closed, failure streak cleared.
	now = now.Add(time.Second)
	if !bk.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	bk.Success()
	if got := bk.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	bk.Failure()
	bk.Failure()
	if got := bk.State(); got != BreakerClosed {
		t.Fatalf("failure streak survived the success reset: %v", got)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
		BreakerState(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
