package cluster_test

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cluster"
	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
	"thematicep/internal/telemetry"
)

// TestFullStackExpositionLints scrapes the complete /metrics surface a real
// deployment exposes — broker pipeline histograms, subindex occupancy,
// semantics cache counters, and cluster forward gauges on one page — and
// validates it against the exposition-format invariants end to end, the way
// cmd/thematicd wires it (broker + node + space collectors on one handler).
func TestFullStackExpositionLints(t *testing.T) {
	space := semantics.NewSpace(index.Build(corpus.GenerateDefault()))
	m := matcher.New(space)
	b := broker.New(
		broker.PreparedBatch(m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch),
		broker.WithThreshold(0.1),
		broker.WithTraceSampling(1),
	)
	srv := broker.NewServer(b)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A second plain broker gives the first a live peer, so the per-peer
	// forward gauges have a series to emit.
	peerB := broker.New(exactMatcher())
	peerSrv := broker.NewServer(peerB)
	peerAddr, err := peerSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.New(b, cluster.Config{
		Self:         addr.String(),
		Peers:        []string{peerAddr.String()},
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetBackend(node)
	srv.SetPeerHandler(node)
	peerNode, err := cluster.New(peerB, cluster.Config{
		Self:         peerAddr.String(),
		Peers:        []string{addr.String()},
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	peerSrv.SetBackend(peerNode)
	peerSrv.SetPeerHandler(peerNode)
	node.Start()
	peerNode.Start()
	t.Cleanup(func() {
		peerNode.Close()
		peerSrv.Close()
		peerB.Close()
		node.Close()
		srv.Close()
		b.Close()
	})

	sub, err := event.ParseSubscription(
		"({energy}, {type = increased energy usage event~, device~ = laptop~})")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	ev, err := event.ParseEvent(
		"({energy}, {type: increased energy consumption event, device: computer})")
	if err != nil {
		t.Fatal(err)
	}
	ev.ID = "expo-ev-1"
	if err := b.Publish(ev); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	broker.MetricsHandler(b, node, space).ServeHTTP(rec,
		httptest.NewRequest("GET", "/metrics", nil))
	body, _ := io.ReadAll(rec.Body)
	out := string(body)

	if err := telemetry.Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("full exposition fails lint: %v\n%s", err, out)
	}

	families, err := telemetry.ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	latency := 0
	for _, f := range families {
		if f.Type == "histogram" && strings.HasSuffix(f.Name, "_seconds") {
			latency++
		}
	}
	if latency < 4 {
		t.Errorf("exposition has %d latency histogram families, want >= 4", latency)
	}

	// Every subsystem's telemetry lands on the one scrape.
	for _, want := range []string{
		"thematicep_broker_publish_seconds_bucket",
		"thematicep_broker_published_total 1",
		"thematicep_subindex_subscriptions 1",
		`thematicep_semantics_cache_hits_total{cache="projection"}`,
		"thematicep_cluster_forward_queue_depth{peer=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
