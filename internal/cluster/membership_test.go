package cluster

import (
	"testing"
	"time"

	"thematicep/internal/broker"
)

func member(m *membership, id string) (Member, bool) {
	for _, e := range m.Snapshot() {
		if e.Node == id {
			return e, true
		}
	}
	return Member{}, false
}

func TestMembershipSupersedes(t *testing.T) {
	cases := []struct {
		incB   uint64
		sB     MemberState
		incA   uint64
		sA     MemberState
		expect bool
	}{
		{2, MemberAlive, 1, MemberDead, true},    // higher incarnation always wins
		{1, MemberDead, 2, MemberAlive, false},   // even dead loses to a newer epoch
		{1, MemberSuspect, 1, MemberAlive, true}, // equal epoch: stronger claim wins
		{1, MemberDead, 1, MemberSuspect, true},
		{1, MemberAlive, 1, MemberSuspect, false}, // alive cannot refute at the same epoch
		{1, MemberAlive, 1, MemberAlive, false},   // identical claim is not a change
	}
	for _, c := range cases {
		if got := supersedes(c.incB, c.sB, c.incA, c.sA); got != c.expect {
			t.Errorf("supersedes(inc%d %v over inc%d %v) = %v, want %v",
				c.incB, c.sB, c.incA, c.sA, got, c.expect)
		}
	}
}

func TestMembershipMergePrecedence(t *testing.T) {
	now := time.Now()
	m := newMembership("self", "", nil)

	// New member joins alive.
	if !m.Merge([]broker.MemberInfo{{Node: "b", Incarnation: 1}}, now) {
		t.Fatal("first sighting of b should change the view")
	}
	// Suspect rumor at the same incarnation supersedes alive.
	if !m.Merge([]broker.MemberInfo{{Node: "b", Incarnation: 1, State: uint8(MemberSuspect)}}, now) {
		t.Fatal("suspect@1 should supersede alive@1")
	}
	// A stale alive at the same incarnation does not clear the suspicion...
	if m.Merge([]broker.MemberInfo{{Node: "b", Incarnation: 1}}, now) {
		t.Fatal("alive@1 must not supersede suspect@1")
	}
	// ...but the member's own refutation at a higher incarnation does.
	if !m.Merge([]broker.MemberInfo{{Node: "b", Incarnation: 2}}, now) {
		t.Fatal("alive@2 should refute suspect@1")
	}
	if got, _ := member(m, "b"); got.State != MemberAlive || got.Incarnation != 2 {
		t.Fatalf("b = %+v, want alive@2", got)
	}
}

func TestMembershipSelfRefutation(t *testing.T) {
	now := time.Now()
	m := newMembership("self", "", nil)
	before, _ := member(m, "self")

	// A rumor that we are dead must bump our incarnation past the rumor's
	// so the next gossip round re-announces us alive under a newer epoch.
	m.Merge([]broker.MemberInfo{{Node: "self", Incarnation: 7, State: uint8(MemberDead)}}, now)
	after, _ := member(m, "self")
	if after.Incarnation <= 7 || after.Incarnation <= before.Incarnation {
		t.Fatalf("self incarnation %d, want > 7 (refutation)", after.Incarnation)
	}
	if after.State != MemberAlive {
		t.Fatalf("self state %v, want alive", after.State)
	}

	// A stale rumor below our incarnation is ignored.
	cur := after.Incarnation
	m.Merge([]broker.MemberInfo{{Node: "self", Incarnation: 2, State: uint8(MemberSuspect)}}, now)
	if got, _ := member(m, "self"); got.Incarnation != cur {
		t.Fatalf("stale rumor bumped incarnation to %d", got.Incarnation)
	}
}

func TestMembershipReap(t *testing.T) {
	now := time.Now()
	m := newMembership("self", "", []string{"b"})
	if !m.ObserveDown("b", now) {
		t.Fatal("ObserveDown on an alive member should change the view")
	}
	if m.ObserveDown("b", now) {
		t.Fatal("ObserveDown on a suspect is a no-op")
	}
	if m.Reap(time.Second, now.Add(500*time.Millisecond)) {
		t.Fatal("suspect younger than the timeout must not be reaped")
	}
	if !m.Reap(time.Second, now.Add(2*time.Second)) {
		t.Fatal("suspect older than the timeout should die")
	}
	if got, _ := member(m, "b"); got.State != MemberDead {
		t.Fatalf("b = %v, want dead", got.State)
	}
	if rm := m.RingMembers(); len(rm) != 1 || rm[0] != "self" {
		t.Fatalf("ring members %v, want [self] after b died", rm)
	}

	// A restarted member with a reset incarnation cannot revive itself
	// directly (dead@0 holds higher precedence at the same epoch is moot —
	// the recorded death is at incarnation 0 too, and dead > alive)...
	if m.Merge([]broker.MemberInfo{{Node: "b", Incarnation: 0}}, now) {
		t.Fatal("alive@0 must not supersede dead@0")
	}
	// ...until it hears the death rumor and bumps past it.
	if !m.Merge([]broker.MemberInfo{{Node: "b", Incarnation: 1}}, now) {
		t.Fatal("alive@1 should revive dead@0")
	}
	joins, leaves, suspects := m.Counters()
	if joins != 2 || leaves != 1 || suspects != 1 {
		t.Fatalf("counters joins=%d leaves=%d suspects=%d, want 2/1/1", joins, leaves, suspects)
	}
}

func TestMembershipGossipRoundtrip(t *testing.T) {
	now := time.Now()
	a := newMembership("a", "ma", []string{"b"})
	b := newMembership("b", "mb", []string{"a"})
	c := newMembership("c", "mc", []string{"a"})

	// c introduces itself to a; a relays everyone to b; b now knows c
	// without ever being configured with it.
	a.Merge(c.Gossip(), now)
	b.Merge(a.Gossip(), now)
	if got, ok := member(b, "c"); !ok || got.Metrics != "mc" {
		t.Fatalf("b's view of c = %+v, want alive with metrics mc", got)
	}
	if got, _ := member(b, "a"); got.Metrics != "ma" {
		t.Fatalf("b's view of a lost its metrics address: %+v", got)
	}
}
