package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a := NewRing([]string{"n1:7070", "n2:7070", "n3:7070"}, 0)
	b := NewRing([]string{"n3:7070", "n1:7070", "n2:7070"}, 0)
	for i := 0; i < 200; i++ {
		tag := fmt.Sprintf("theme-%d", i)
		if a.Owner(tag) != b.Owner(tag) {
			t.Fatalf("owner of %q differs across member order: %q vs %q", tag, a.Owner(tag), b.Owner(tag))
		}
	}
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Errorf("memberships differ: %v vs %v", a.Nodes(), b.Nodes())
	}
}

func TestRingOwnerCanonicalizesTags(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	if r.Owner("Land Transport") != r.Owner("land transport") {
		t.Error("canonically equal tags shard differently")
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[r.Owner(fmt.Sprintf("theme-%d", i))]++
	}
	for _, n := range r.Nodes() {
		if counts[n] == 0 {
			t.Errorf("node %q owns no tags out of 300: %v", n, counts)
		}
	}
}

func TestRingOwnersEmptyThemeMapsToAllNodes(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	owners := r.Owners(nil)
	if len(owners) != 3 {
		t.Fatalf("empty theme owners = %v, want all 3 nodes", owners)
	}
	if !r.Owns("b", nil) {
		t.Error("every node should own the empty theme set")
	}
}

func TestRingOwnersDedupes(t *testing.T) {
	r := NewRing([]string{"a", "b"}, 0)
	owners := r.Owners([]string{"x", "x", "X"})
	if len(owners) != 1 {
		t.Errorf("owners of a repeated tag = %v, want one node", owners)
	}
}

// TestRingConsistency asserts the defining property of consistent hashing:
// removing one member only reassigns the tags that member owned.
func TestRingConsistency(t *testing.T) {
	full := NewRing([]string{"a", "b", "c", "d"}, 0)
	reduced := NewRing([]string{"a", "b", "c"}, 0)
	moved := 0
	for i := 0; i < 500; i++ {
		tag := fmt.Sprintf("theme-%d", i)
		before := full.Owner(tag)
		after := reduced.Owner(tag)
		if before != "d" && before != after {
			t.Fatalf("tag %q moved from surviving node %q to %q", tag, before, after)
		}
		if before != after {
			moved++
		}
	}
	if moved == 0 {
		t.Error("expected some tags to move off the removed node")
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r := NewRing([]string{"solo"}, 0)
	if got := r.Owner("anything"); got != "solo" {
		t.Errorf("Owner = %q, want solo", got)
	}
}

func BenchmarkRingOwners(b *testing.B) {
	nodes := make([]string, 16)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("broker-%d:7070", i)
	}
	r := NewRing(nodes, 0)
	theme := []string{"land transport", "road traffic", "public transport"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Owners(theme)) == 0 {
			b.Fatal("no owners")
		}
	}
}
