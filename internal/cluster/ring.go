// Package cluster federates thematic brokers into a theme-sharded overlay.
//
// Semantic pub/sub has a natural partitioning key the classic distributed
// brokers (SIENA-style overlays, S-ToPSS) lacked: the theme tag set. Each
// broker owns a shard of the theme space via consistent hashing over
// canonical theme tags. A subscription is registered on the shard(s)
// owning its themes; a published event is forwarded only to the peers
// whose shard overlaps its theme set, so cross-broker traffic flows only
// where theme interests can overlap. Remote matches travel back to the
// subscriber's home broker, which de-duplicates by event ID — an event
// matched on two shards is still delivered exactly once.
package cluster

import (
	"hash/fnv"
	"sort"

	"thematicep/internal/text"
)

// DefaultVirtualNodes is the number of ring points per broker; enough to
// spread a small cluster's theme vocabulary evenly without making ring
// construction noticeable.
const DefaultVirtualNodes = 64

type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over broker node IDs. All
// brokers in a cluster build the same ring from the same membership, so
// routing decisions agree without coordination.
type Ring struct {
	nodes  []string
	points []ringPoint
}

// NewRing builds a ring from the member node IDs with vnodes virtual
// points each (DefaultVirtualNodes when vnodes <= 0). Duplicate IDs are
// collapsed; membership order does not matter.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &Ring{
		nodes:  uniq,
		points: make([]ringPoint, 0, len(uniq)*vnodes),
	}
	var buf [8]byte
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			h := fnv.New64a()
			h.Write([]byte(n))
			buf[0] = byte(i >> 8)
			buf[1] = byte(i)
			h.Write(buf[:2])
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring membership (sorted, deduplicated).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Size returns the number of member nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// mix64 is the murmur3 finalizer. FNV-1a alone barely avalanches on short
// inputs — a node's virtual points would cluster into one arc and a single
// member would own nearly every tag — so every hash is finalized before it
// lands on the ring.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func hashTag(tag string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(text.Canonical(tag)))
	return mix64(h.Sum64())
}

// Owner returns the node owning a theme tag: the first ring point at or
// after the tag's hash, wrapping around. Tags are canonicalized first so
// "Land Transport" and "land transport" shard identically.
func (r *Ring) Owner(tag string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashTag(tag)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Owners returns the set of nodes owning any tag of a theme set, sorted.
// An empty theme set has no partition key, so it maps to every node: a
// theme-less subscription may match any event and a theme-less event may
// match any subscription.
func (r *Ring) Owners(theme []string) []string {
	if len(r.nodes) == 0 {
		return nil
	}
	if len(theme) == 0 {
		return r.Nodes()
	}
	seen := make(map[string]bool, len(theme))
	out := make([]string, 0, len(theme))
	for _, tag := range theme {
		n := r.Owner(tag)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owns reports whether node owns at least one tag of the theme set (always
// true for empty theme sets).
func (r *Ring) Owns(node string, theme []string) bool {
	if len(theme) == 0 {
		return true
	}
	for _, tag := range theme {
		if r.Owner(tag) == node {
			return true
		}
	}
	return false
}
