// Package corpus generates the deterministic synthetic text corpus that
// substitutes for the Wikipedia 2013 dump used by the paper's ESA measure
// (§3.1, §4.1). See DESIGN.md §1 for the substitution argument.
//
// The corpus is generated from the vocab domains with three document kinds:
//
//   - concept documents: built around one concept; its label and synonyms
//     co-occur with high term frequency, related terms and domain context
//     appear with lower frequency, and a sample of the domain's top terms
//     anchors the document to its domain. Synonym relatedness and the
//     theme-projection basis both come from these documents.
//
//   - domain documents: overviews that carry every top term of the domain
//     plus a sample of concept labels, mirroring portal/overview articles.
//
//   - mixed documents: cross-domain noise that samples concept terms from
//     several domains plus background vocabulary, and never contains top
//     terms. They create the spurious co-occurrence that corrupts the
//     non-thematic full space; every thematic basis excludes them because
//     theme tags never select them. This asymmetry is the corpus-level
//     mechanism behind the paper's F1 and throughput improvements.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"thematicep/internal/text"
	"thematicep/internal/vocab"
)

// Document is one corpus document: a dimension of the distributional vector
// space (Eq. 1).
type Document struct {
	ID     int32
	Title  string
	Kind   Kind
	Domain string // owning domain for concept/domain docs, "" for mixed
	Tokens []string
}

// Kind classifies how a document was generated.
type Kind int

// Document kinds.
const (
	KindConcept Kind = iota + 1
	KindDomain
	KindMixed
	KindEntity
)

func (k Kind) String() string {
	switch k {
	case KindConcept:
		return "concept"
	case KindDomain:
		return "domain"
	case KindMixed:
		return "mixed"
	case KindEntity:
		return "entity"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Corpus is an ordered set of documents.
type Corpus struct {
	Docs []Document
}

// Config controls corpus generation. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// DocsPerConcept is the number of documents generated per concept.
	DocsPerConcept int
	// DomainDocs is the number of overview documents per domain.
	DomainDocs int
	// MixedDocs is the number of cross-domain noise documents.
	MixedDocs int
	// EntityDocs is the number of entity documents: catalog-like pages
	// where dataset entities (appliances, car brands) co-occur with their
	// siblings and a few home-domain concept terms. Like mixed documents
	// they carry no top terms, so they corrupt only the full space — the
	// analog of Wikipedia's long tail of product/brand pages.
	EntityDocs int
	// NoiseLexicon is the size of the background vocabulary.
	NoiseLexicon int
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Seed:           42,
		DocsPerConcept: 6,
		DomainDocs:     10,
		MixedDocs:      320,
		EntityDocs:     260,
		NoiseLexicon:   400,
	}
}

// Generate builds a corpus over the given domains. Identical inputs produce
// identical corpora.
func Generate(domains []vocab.Domain, cfg Config) *Corpus {
	if cfg.DocsPerConcept <= 0 || cfg.DomainDocs < 0 || cfg.MixedDocs < 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	noise := noiseLexicon(cfg.NoiseLexicon)
	c := &Corpus{}

	add := func(title string, kind Kind, domain string, tokens []string) {
		c.Docs = append(c.Docs, Document{
			ID:     int32(len(c.Docs)),
			Title:  title,
			Kind:   kind,
			Domain: domain,
			Tokens: tokens,
		})
	}

	for di, d := range domains {
		for _, concept := range d.Concepts {
			for i := 0; i < cfg.DocsPerConcept; i++ {
				title := fmt.Sprintf("%s/%s #%d", d.Name, concept.Label, i+1)
				add(title, KindConcept, d.Name, conceptDoc(rng, domains, di, concept, noise))
			}
		}
		for i := 0; i < cfg.DomainDocs; i++ {
			title := fmt.Sprintf("%s/overview #%d", d.Name, i+1)
			add(title, KindDomain, d.Name, domainDoc(rng, d, noise))
		}
	}
	catalogs := entityCatalogs(domains)
	for i := 0; i < cfg.EntityDocs; i++ {
		cat := catalogs[i%len(catalogs)]
		title := fmt.Sprintf("entity/%s #%d", cat.name, i/len(catalogs)+1)
		add(title, KindEntity, "", entityDoc(rng, cat, noise))
	}
	for i := 0; i < cfg.MixedDocs; i++ {
		title := fmt.Sprintf("mixed #%d", i+1)
		add(title, KindMixed, "", mixedDoc(rng, domains, noise))
	}
	return c
}

// catalog is one entity dataset with the concept terms of its home domain
// that catalog pages mention.
type catalog struct {
	name     string
	entities []string
	hooks    []string // home-domain concept terms co-occurring with entities
	domain   string
}

// entityCatalogs returns the entity datasets whose members appear in events
// (appliances in energy-consumption events, car brands on vehicle
// platforms). Hook terms are only included when their domain is generated.
func entityCatalogs(domains []vocab.Domain) []catalog {
	has := make(map[string]bool, len(domains))
	for _, d := range domains {
		has[d.Name] = true
	}
	cats := []catalog{
		{
			name:     "appliances",
			entities: vocab.Appliances(),
			hooks:    []string{"energy consumption", "power consumption", "appliance", "device"},
			domain:   "energy",
		},
		{
			name:     "cars",
			entities: vocab.CarBrands(),
			hooks:    []string{"vehicle", "car", "motor vehicle", "driving"},
			domain:   "transport",
		},
	}
	out := cats[:0]
	for _, c := range cats {
		if has[c.domain] {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return cats[:1]
	}
	return out
}

// entityDoc builds one catalog page: several sibling entities co-occur with
// each other and a couple of home-domain concept terms. No top terms, so
// theme bases always exclude these documents.
func entityDoc(rng *rand.Rand, cat catalog, noise []string) []string {
	var toks []string
	emit := func(term string, times int) {
		for i := 0; i < times; i++ {
			toks = append(toks, text.Tokenize(term)...)
			toks = append(toks, noise[rng.Intn(len(noise))])
		}
	}
	n := 4 + rng.Intn(3)
	for _, j := range rng.Perm(len(cat.entities))[:min(n, len(cat.entities))] {
		emit(cat.entities[j], 2+rng.Intn(2))
	}
	for _, j := range rng.Perm(len(cat.hooks))[:min(2, len(cat.hooks))] {
		emit(cat.hooks[j], 1)
	}
	toks = append(toks, hubTokens(rng, false)...)
	for i := 0; i < 10; i++ {
		toks = append(toks, noise[rng.Intn(len(noise))])
	}
	return toks
}

// GenerateDefault builds the evaluation corpus: the six evaluation domains
// plus the distractor domains (the "rest of Wikipedia"), default
// configuration.
func GenerateDefault() *Corpus {
	return Generate(vocab.AllDomains(), DefaultConfig())
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.Docs) }

// conceptDoc builds one document centred on the concept domains[di] owns.
func conceptDoc(rng *rand.Rand, domains []vocab.Domain, di int, concept vocab.Concept, noise []string) []string {
	d := domains[di]
	var toks []string
	emit := func(term string, times int) {
		ts := text.Tokenize(term)
		for i := 0; i < times; i++ {
			toks = append(toks, ts...)
		}
	}
	// The concept's own terms dominate the document. Each document carries
	// the label plus a random subset of the synonyms — surface forms only
	// partially co-occur in real text, so synonym relatedness is strong but
	// not trivially saturated.
	emit(concept.Label, 3+rng.Intn(3))
	if n := len(concept.Synonyms); n > 0 {
		take := (n + 1) / 2
		if take < 2 && n >= 2 {
			take = 2
		}
		for _, j := range rng.Perm(n)[:take] {
			emit(concept.Synonyms[j], 2+rng.Intn(3))
		}
	}
	// Related terms appear with lower frequency than synonyms but reliably:
	// concept documents are where label-to-related association lives, and
	// they are inside every basis that covers the domain.
	for _, r := range concept.Related {
		emit(r, 1+rng.Intn(2))
	}
	// The domain's top terms anchor the document to its domain: these
	// occurrences are what put the document into a theme's basis. Each top
	// term appears independently with probability 3/4, so even a single tag
	// covers most of its domain's concept documents — mirroring how densely
	// Wikipedia's portal vocabulary covers domain articles.
	anchored := false
	for _, tt := range d.TopTerms {
		if rng.Intn(4) > 0 {
			emit(tt, 1+rng.Intn(2))
			anchored = true
		}
	}
	if !anchored {
		emit(d.TopTerms[rng.Intn(len(d.TopTerms))], 1)
	}
	// Domain context flavour.
	for _, j := range rng.Perm(len(d.Context))[:min(4, len(d.Context))] {
		emit(d.Context[j], 1)
	}
	// Cross-domain leakage: real encyclopedia articles are topically mixed
	// (a transport article mentions energy, cities, people), so every
	// thematic basis retains weak signal for off-theme terms. Each leaked
	// concept contributes its label AND one synonym: articles mention
	// entities with their naming redundancy, which is what keeps synonym
	// pairs weakly related even in bases that miss their domain entirely.
	leak := func(other vocab.Domain) {
		oc := other.Concepts[rng.Intn(len(other.Concepts))]
		emit(oc.Label, 1)
		if len(oc.Synonyms) > 0 {
			emit(oc.Synonyms[rng.Intn(len(oc.Synonyms))], 1)
		}
		if len(oc.Related) > 0 && rng.Intn(2) == 0 {
			emit(oc.Related[rng.Intn(len(oc.Related))], 1)
		}
	}
	if len(domains) > 1 {
		for k := 0; k < 2; k++ {
			other := domains[rng.Intn(len(domains))]
			if other.Name == d.Name {
				continue
			}
			leak(other)
		}
		// Geography is special: real articles are location-grounded, so
		// geographic vocabulary appears across every topic. This keeps
		// place terms measurable in any thematic basis.
		if d.Name != "geography" && rng.Intn(4) > 0 {
			for _, other := range domains {
				if other.Name == "geography" {
					leak(other)
					break
				}
			}
		}
	}
	// Domain jargon: hub tokens are near-ubiquitous inside evaluation
	// domains and scattered elsewhere (see vocab.HubTokens).
	toks = append(toks, hubTokens(rng, vocab.IsEvaluationDomain(d.Name))...)
	// Background noise.
	for i := 0; i < 8; i++ {
		toks = append(toks, noise[rng.Intn(len(noise))])
	}
	return toks
}

// hubTokens samples the jargon tokens for one document: each hub appears
// with probability 0.85 in evaluation-domain documents and 0.2 elsewhere,
// and each frame token (near-stopword) with probability 0.9 everywhere.
func hubTokens(rng *rand.Rand, evalDomain bool) []string {
	var out []string
	for _, hub := range vocab.HubTokens() {
		p := 20
		if evalDomain {
			p = 85
		}
		if rng.Intn(100) < p {
			for i := 0; i <= rng.Intn(2); i++ {
				out = append(out, hub)
			}
		}
	}
	for _, frame := range vocab.FrameTokens() {
		if rng.Intn(100) < 90 {
			out = append(out, frame)
		}
	}
	return out
}

// domainDoc builds one overview document for a domain.
func domainDoc(rng *rand.Rand, d vocab.Domain, noise []string) []string {
	var toks []string
	emit := func(term string, times int) {
		ts := text.Tokenize(term)
		for i := 0; i < times; i++ {
			toks = append(toks, ts...)
		}
	}
	for _, tt := range d.TopTerms {
		emit(tt, 2+rng.Intn(2))
	}
	// A sample of concept labels (overview mentions, one occurrence each).
	for _, j := range rng.Perm(len(d.Concepts))[:min(8, len(d.Concepts))] {
		emit(d.Concepts[j].Label, 1)
	}
	for _, j := range rng.Perm(len(d.Context))[:min(6, len(d.Context))] {
		emit(d.Context[j], 1)
	}
	toks = append(toks, hubTokens(rng, vocab.IsEvaluationDomain(d.Name))...)
	for i := 0; i < 6; i++ {
		toks = append(toks, noise[rng.Intn(len(noise))])
	}
	return toks
}

// mixedDoc builds one cross-domain noise document. It must never contain a
// top term: theme tags must not select noise documents into a basis.
func mixedDoc(rng *rand.Rand, domains []vocab.Domain, noise []string) []string {
	var toks []string
	// A noise token separates consecutive terms so that adjacent concept
	// terms can never accidentally form a top-term phrase (theme bases use
	// phrase matching and must exclude every mixed document). Terms repeat
	// so their tf — and hence the document's weight in their full-space
	// vectors — is substantial.
	emit := func(term string) {
		for i := 0; i < 2+rng.Intn(2); i++ {
			toks = append(toks, text.Tokenize(term)...)
			toks = append(toks, noise[rng.Intn(len(noise))])
		}
	}
	// Sample concepts from 2-3 distinct domains, mashing senses together
	// the way general text does. Each sampled concept contributes its label
	// and one synonym, so the document creates a strong spurious link
	// between the sampled concepts' vocabularies — the full-space noise
	// thematic projection removes.
	nd := 2 + rng.Intn(2)
	for _, di := range rng.Perm(len(domains))[:min(nd, len(domains))] {
		d := domains[di]
		nc := 2 + rng.Intn(2)
		for _, ci := range rng.Perm(len(d.Concepts))[:min(nc, len(d.Concepts))] {
			concept := d.Concepts[ci]
			emit(concept.Label)
			if len(concept.Synonyms) > 0 {
				emit(concept.Synonyms[rng.Intn(len(concept.Synonyms))])
			}
		}
	}
	toks = append(toks, hubTokens(rng, false)...)
	for i := 0; i < 20; i++ {
		toks = append(toks, noise[rng.Intn(len(noise))])
	}
	return toks
}

// noiseLexicon generates n deterministic pronounceable background words that
// cannot collide with real vocabulary (they carry a 'q'+consonant signature
// absent from English).
func noiseLexicon(n int) []string {
	if n <= 0 {
		n = 400
	}
	consonants := []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"}
	vowels := []string{"a", "e", "i", "o", "u"}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		sb.WriteString("q")
		x := i
		for s := 0; s < 3; s++ {
			sb.WriteString(consonants[x%len(consonants)])
			x /= len(consonants)
			sb.WriteString(vowels[x%len(vowels)])
			x /= len(vowels)
		}
		out[i] = sb.String()
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
