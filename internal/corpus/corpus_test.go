package corpus

import (
	"reflect"
	"testing"

	"thematicep/internal/text"
	"thematicep/internal/vocab"
)

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateDefault()
	b := GenerateDefault()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Docs {
		if !reflect.DeepEqual(a.Docs[i], b.Docs[i]) {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
}

func TestGenerateSeedChangesCorpus(t *testing.T) {
	cfg := DefaultConfig()
	a := Generate(vocab.Domains(), cfg)
	cfg.Seed = 7
	b := Generate(vocab.Domains(), cfg)
	same := a.Len() == b.Len()
	if same {
		same = reflect.DeepEqual(a.Docs[0].Tokens, b.Docs[0].Tokens)
	}
	if same {
		t.Error("different seeds produced an identical first document")
	}
}

func TestDocumentIDsAreDense(t *testing.T) {
	c := GenerateDefault()
	for i, d := range c.Docs {
		if d.ID != int32(i) {
			t.Fatalf("doc %d has ID %d", i, d.ID)
		}
	}
}

func TestCorpusComposition(t *testing.T) {
	cfg := DefaultConfig()
	c := Generate(vocab.AllDomains(), cfg)
	counts := map[Kind]int{}
	for _, d := range c.Docs {
		counts[d.Kind]++
		if len(d.Tokens) == 0 {
			t.Errorf("doc %q has no tokens", d.Title)
		}
		switch d.Kind {
		case KindConcept, KindDomain:
			if d.Domain == "" {
				t.Errorf("doc %q of kind %v lacks a domain", d.Title, d.Kind)
			}
		case KindMixed, KindEntity:
			if d.Domain != "" {
				t.Errorf("%v doc %q has domain %q", d.Kind, d.Title, d.Domain)
			}
		}
	}
	concepts := 0
	for _, d := range vocab.AllDomains() {
		concepts += len(d.Concepts)
	}
	if want := concepts * cfg.DocsPerConcept; counts[KindConcept] != want {
		t.Errorf("concept docs = %d, want %d", counts[KindConcept], want)
	}
	if want := len(vocab.AllDomains()) * cfg.DomainDocs; counts[KindDomain] != want {
		t.Errorf("domain docs = %d, want %d", counts[KindDomain], want)
	}
	if counts[KindMixed] != cfg.MixedDocs {
		t.Errorf("mixed docs = %d, want %d", counts[KindMixed], cfg.MixedDocs)
	}
	if counts[KindEntity] != cfg.EntityDocs {
		t.Errorf("entity docs = %d, want %d", counts[KindEntity], cfg.EntityDocs)
	}
}

// Dataset entities must be in-vocabulary so that event values carry
// non-zero vectors in the full space.
func TestEntityTermsInVocabulary(t *testing.T) {
	c := GenerateDefault()
	seen := make(map[string]bool)
	for _, d := range c.Docs {
		for _, tok := range d.Tokens {
			seen[tok] = true
		}
	}
	for _, entity := range append(vocab.Appliances(), vocab.CarBrands()...) {
		for _, tok := range text.Tokenize(entity) {
			if !seen[tok] {
				t.Errorf("entity token %q never appears in the corpus", tok)
			}
		}
	}
}

// The projection mechanism requires that mixed (noise) documents never
// contain a top-term phrase: theme bases use phrase matching, and a theme
// tag must never select a noise document into a thematic basis.
func TestMixedDocsContainNoTopTermPhrase(t *testing.T) {
	var phrases [][]string
	for _, d := range vocab.Domains() {
		for _, tt := range d.TopTerms {
			phrases = append(phrases, text.Tokenize(tt))
		}
	}
	containsPhrase := func(tokens, phrase []string) bool {
	outer:
		for i := 0; i+len(phrase) <= len(tokens); i++ {
			for j, p := range phrase {
				if tokens[i+j] != p {
					continue outer
				}
			}
			return true
		}
		return false
	}
	c := GenerateDefault()
	for _, d := range c.Docs {
		if d.Kind != KindMixed && d.Kind != KindEntity {
			continue
		}
		for _, p := range phrases {
			if containsPhrase(d.Tokens, p) {
				t.Fatalf("%v doc %q contains top-term phrase %v", d.Kind, d.Title, p)
			}
		}
	}
}

// Every domain's top terms must appear in that domain's documents so theme
// tags have a non-empty basis.
func TestTopTermsAppearInOwnDomainDocs(t *testing.T) {
	c := GenerateDefault()
	domainTokens := make(map[string]map[string]bool)
	for _, d := range c.Docs {
		if d.Domain == "" {
			continue
		}
		m := domainTokens[d.Domain]
		if m == nil {
			m = make(map[string]bool)
			domainTokens[d.Domain] = m
		}
		for _, tok := range d.Tokens {
			m[tok] = true
		}
	}
	for _, d := range vocab.Domains() {
		for _, tt := range d.TopTerms {
			for _, tok := range text.Tokenize(tt) {
				if !domainTokens[d.Name][tok] {
					t.Errorf("top term token %q absent from %s documents", tok, d.Name)
				}
			}
		}
	}
}

// Every concept term must appear somewhere in the corpus (in-vocabulary),
// otherwise semantic expansion would produce terms with zero vectors.
func TestAllConceptTermsInVocabulary(t *testing.T) {
	c := GenerateDefault()
	seen := make(map[string]bool)
	for _, d := range c.Docs {
		for _, tok := range d.Tokens {
			seen[tok] = true
		}
	}
	for _, d := range vocab.Domains() {
		for _, concept := range d.Concepts {
			for _, term := range concept.Terms() {
				for _, tok := range text.Tokenize(term) {
					if !seen[tok] {
						t.Errorf("token %q of term %q never appears in the corpus", tok, term)
					}
				}
			}
		}
	}
}

func TestNoiseLexicon(t *testing.T) {
	words := noiseLexicon(400)
	if len(words) != 400 {
		t.Fatalf("len = %d", len(words))
	}
	seen := make(map[string]bool)
	for _, w := range words {
		if seen[w] {
			t.Fatalf("duplicate noise word %q", w)
		}
		seen[w] = true
		if w[0] != 'q' {
			t.Fatalf("noise word %q lacks the q prefix", w)
		}
		if text.IsStopWord(w) {
			t.Fatalf("noise word %q is a stop word", w)
		}
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindConcept, "concept"},
		{KindDomain, "domain"},
		{KindMixed, "mixed"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind.String = %q, want %q", got, tt.want)
		}
	}
}

func TestInvalidConfigFallsBackToDefault(t *testing.T) {
	c := Generate(vocab.AllDomains(), Config{})
	if c.Len() == 0 {
		t.Fatal("zero config produced empty corpus")
	}
	if c.Len() != GenerateDefault().Len() {
		t.Error("zero config did not fall back to default")
	}
}
