// Package wal is the broker's durability layer: a per-broker write-ahead
// log plus snapshot for subscription and continuous-query registrations.
// A crashed broker replays the snapshot and log on start (thematicd
// -data-dir) and re-registers everything it hosted before accepting
// traffic, so clients that survived the crash keep their registrations
// without re-subscribing.
//
// The log is a stream of length-prefixed, checksummed records in the
// uvarint idiom of internal/index/persist.go:
//
//	magic "TEPWAL1\n" | per record: len uvarint, payload, crc32(payload) LE
//	payload: type byte | JSON body
//
// Replay trusts exactly the prefix that checks out: a torn or corrupt
// record (a crash mid-append, a bad disk) ends the log at the last valid
// boundary — the damaged suffix is reported, counted, and truncated away,
// never loaded. The snapshot is a single checksummed record of the full
// registration state, written to a temp file and atomically renamed, so a
// crash mid-snapshot leaves the previous snapshot intact.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/event"
)

var (
	logMagic  = []byte("TEPWAL1\n")
	snapMagic = []byte("TEPSNP1\n")
)

// ErrBadSnapshot reports a corrupt snapshot file: unlike a torn log tail
// (expected after a crash, recovered silently), a snapshot that fails its
// checksum means real damage and the broker must not guess — Open fails
// loudly and the operator decides.
var ErrBadSnapshot = errors.New("wal: bad snapshot file")

// maxRecord bounds one record's payload, protecting replay from corrupt
// length prefixes (mirrors broker.MaxFrameSize).
const maxRecord = 1 << 20

// Record types.
const (
	recSubscribe byte = iota + 1
	recUnsubscribe
	recQuery
	recUnquery
)

// State is the materialized registration state: everything a recovering
// broker must re-register before accepting traffic.
type State struct {
	Subs    map[string]*event.Subscription `json:"subs,omitempty"`
	Queries map[string]*broker.QuerySpec   `json:"queries,omitempty"`
}

func newState() State {
	return State{
		Subs:    make(map[string]*event.Subscription),
		Queries: make(map[string]*broker.QuerySpec),
	}
}

// clone deep-copies the map shells (the pointed-to specs are treated as
// immutable once journaled).
func (s State) clone() State {
	out := newState()
	for id, sub := range s.Subs {
		out.Subs[id] = sub
	}
	for name, q := range s.Queries {
		out.Queries[name] = q
	}
	return out
}

// record is one decoded log entry.
type record struct {
	Type byte
	ID   string              // subscribe/unsubscribe
	Sub  *event.Subscription `json:",omitempty"`
	Name string              // query/unquery
	Spec *broker.QuerySpec   `json:",omitempty"`
}

// apply folds the record into the state. Records are last-writer-wins per
// key, so replaying a log over any snapshot it post-dates converges.
func (s *State) apply(r record) {
	switch r.Type {
	case recSubscribe:
		if r.ID != "" && r.Sub != nil {
			s.Subs[r.ID] = r.Sub
		}
	case recUnsubscribe:
		delete(s.Subs, r.ID)
	case recQuery:
		if r.Spec != nil && r.Spec.Name != "" {
			s.Queries[r.Spec.Name] = r.Spec
		}
	case recUnquery:
		delete(s.Queries, r.Name)
	}
}

// FsyncPolicy controls when appends reach stable storage.
type FsyncPolicy struct {
	// Never disables fsync entirely (the OS decides); otherwise appends
	// fsync synchronously when Interval is zero, or a background flusher
	// fsyncs dirty state every Interval.
	Never    bool
	Interval time.Duration
}

// ParseFsyncPolicy parses the -fsync flag: "always", "never", or a flush
// interval such as "100ms".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return FsyncPolicy{}, nil
	case "never":
		return FsyncPolicy{Never: true}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return FsyncPolicy{}, fmt.Errorf("wal: fsync policy %q: want always, never, or a positive duration", s)
	}
	return FsyncPolicy{Interval: d}, nil
}

// Options tune one log.
type Options struct {
	Fsync FsyncPolicy
	// SnapshotEvery snapshots and truncates the log after this many
	// appended records (default 4096; negative disables auto-snapshot).
	SnapshotEvery int
}

// Stats is a snapshot of the log's counters.
type Stats struct {
	Appends     uint64 // records appended this process
	Snapshots   uint64 // snapshots written this process
	Fsyncs      uint64 // fsync calls issued
	Replayed    int    // records recovered from the log at Open
	Truncated   int64  // bytes of torn/corrupt tail discarded at Open
	LogBytes    int64  // current log file size
	LiveSubs    int    // subscriptions in the materialized state
	LiveQueries int    // queries in the materialized state
}

// Log is an open write-ahead log. It implements broker.Journal and
// query.Journal, so wiring durability is WithJournal(log) on both.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           *os.File
	state       State
	sealed      bool
	closed      bool
	dirty       bool // appended since last fsync
	sinceSnap   int  // records since last snapshot
	logBytes    int64
	appends     uint64
	snapshots   uint64
	fsyncs      uint64
	replayed    int
	truncated   int64
	flusherDone chan struct{}
}

func (l *Log) logPath() string  { return filepath.Join(l.dir, "wal.log") }
func (l *Log) snapPath() string { return filepath.Join(l.dir, "snapshot") }

// Open loads (or creates) the durable state under dir: snapshot first,
// then the log replayed over it, with any torn tail truncated to the last
// valid record boundary. It returns the recovered state for the caller to
// re-register; subsequent appends continue the same log.
func Open(dir string, opts Options) (*Log, State, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, State{}, err
	}
	l := &Log{dir: dir, opts: opts, state: newState()}

	if err := l.loadSnapshot(); err != nil {
		return nil, State{}, err
	}
	if err := l.replayLog(); err != nil {
		return nil, State{}, err
	}

	f, err := os.OpenFile(l.logPath(), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, State{}, err
	}
	if l.logBytes == 0 {
		if _, err := f.Write(logMagic); err != nil {
			f.Close()
			return nil, State{}, err
		}
		l.logBytes = int64(len(logMagic))
	}
	if _, err := f.Seek(l.logBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, State{}, err
	}
	l.f = f

	if !opts.Fsync.Never && opts.Fsync.Interval > 0 {
		l.flusherDone = make(chan struct{})
		go l.flusher()
	}
	return l, l.state.clone(), nil
}

func (l *Log) loadSnapshot() error {
	data, err := os.ReadFile(l.snapPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if !bytes.HasPrefix(data, snapMagic) {
		return fmt.Errorf("%w: wrong magic", ErrBadSnapshot)
	}
	r := bytes.NewReader(data[len(snapMagic):])
	payload, _, err := readRecord(r)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	st := newState()
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if st.Subs == nil {
		st.Subs = make(map[string]*event.Subscription)
	}
	if st.Queries == nil {
		st.Queries = make(map[string]*broker.QuerySpec)
	}
	l.state = st
	return nil
}

// replayLog applies every valid record to the state and truncates any torn
// or corrupt tail so appends resume at a clean boundary.
func (l *Log) replayLog() error {
	data, err := os.ReadFile(l.logPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	recs, valid := scanRecords(data)
	for _, r := range recs {
		l.state.apply(r)
	}
	l.replayed = len(recs)
	l.logBytes = valid
	if valid < int64(len(data)) {
		l.truncated = int64(len(data)) - valid
		if err := os.Truncate(l.logPath(), valid); err != nil {
			return err
		}
	}
	return nil
}

// scanRecords decodes the longest valid prefix of an encoded log, returning
// the records and the byte offset where the valid prefix ends. A missing or
// damaged magic yields no records and offset zero (the whole file is
// rewritten). Anything after the first torn/corrupt record — including a
// record that decodes to an unknown type or invalid JSON — is untrusted.
func scanRecords(data []byte) ([]record, int64) {
	if !bytes.HasPrefix(data, logMagic) {
		return nil, 0
	}
	r := bytes.NewReader(data[len(logMagic):])
	offset := int64(len(logMagic))
	var out []record
	for {
		payload, n, err := readRecord(r)
		if err != nil {
			return out, offset
		}
		var rec record
		if len(payload) == 0 || json.Unmarshal(payload[1:], &rec) != nil {
			return out, offset
		}
		rec.Type = payload[0]
		if rec.Type < recSubscribe || rec.Type > recUnquery {
			return out, offset
		}
		out = append(out, rec)
		offset += n
	}
}

// readRecord reads one length-prefixed checksummed record, returning the
// payload and the total encoded size.
func readRecord(r *bytes.Reader) (payload []byte, size int64, err error) {
	before := r.Len()
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, 0, err
	}
	if n == 0 || n > maxRecord {
		return nil, 0, fmt.Errorf("wal: implausible record length %d", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, err
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, 0, err
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.ChecksumIEEE(payload) {
		return nil, 0, fmt.Errorf("wal: record checksum mismatch")
	}
	return payload, int64(before - r.Len()), nil
}

func encodeRecord(typ byte, body any) ([]byte, error) {
	js, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	payload := append([]byte{typ}, js...)
	var buf bytes.Buffer
	var lenBuf [binary.MaxVarintLen64]byte
	buf.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(payload)))])
	buf.Write(payload)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	buf.Write(crcBuf[:])
	return buf.Bytes(), nil
}

// append writes one record, applies it to the materialized state, fsyncs
// per policy, and auto-snapshots past the threshold. Appends on a sealed
// or closed log are dropped: sealing freezes the durable state at the
// moment shutdown began, so teardown-driven unsubscribes cannot erase
// registrations that must survive the restart.
func (l *Log) append(typ byte, body any, rec record) {
	enc, err := encodeRecord(typ, body)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed || l.closed {
		return
	}
	if _, err := l.f.Write(enc); err != nil {
		return
	}
	l.logBytes += int64(len(enc))
	l.appends++
	l.state.apply(rec)
	if !l.opts.Fsync.Never {
		if l.opts.Fsync.Interval > 0 {
			l.dirty = true
		} else if l.f.Sync() == nil {
			l.fsyncs++
		}
	}
	l.sinceSnap++
	if l.opts.SnapshotEvery > 0 && l.sinceSnap >= l.opts.SnapshotEvery {
		l.snapshotLocked()
	}
}

// Subscribed implements broker.Journal.
func (l *Log) Subscribed(id string, sub *event.Subscription) {
	r := record{Type: recSubscribe, ID: id, Sub: sub}
	l.append(recSubscribe, r, r)
}

// Unsubscribed implements broker.Journal.
func (l *Log) Unsubscribed(id string) {
	r := record{Type: recUnsubscribe, ID: id}
	l.append(recUnsubscribe, r, r)
}

// QueryRegistered implements query.Journal.
func (l *Log) QueryRegistered(spec *broker.QuerySpec) {
	r := record{Type: recQuery, Spec: spec}
	l.append(recQuery, r, r)
}

// QueryUnregistered implements query.Journal.
func (l *Log) QueryUnregistered(name string) {
	r := record{Type: recUnquery, Name: name}
	l.append(recUnquery, r, r)
}

// Snapshot persists the materialized state and truncates the log. Called
// by the daemon after recovery (collapsing the re-registration appends)
// and automatically every SnapshotEvery records.
func (l *Log) Snapshot() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	return l.snapshotLocked()
}

func (l *Log) snapshotLocked() error {
	js, err := json.Marshal(l.state)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Write(snapMagic)
	var lenBuf [binary.MaxVarintLen64]byte
	buf.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(js)))])
	buf.Write(js)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(js))
	buf.Write(crcBuf[:])

	tmp := l.snapPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.snapPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	l.fsyncs++
	l.snapshots++

	// The snapshot owns everything the log said: restart the log. A crash
	// between rename and truncate is safe — replaying the old log over the
	// new snapshot converges (records are last-writer-wins per key).
	if err := l.f.Truncate(int64(len(logMagic))); err != nil {
		return err
	}
	if _, err := l.f.Seek(int64(len(logMagic)), io.SeekStart); err != nil {
		return err
	}
	l.logBytes = int64(len(logMagic))
	l.sinceSnap = 0
	l.dirty = false
	return nil
}

// Seal freezes the log: every subsequent append is dropped. The daemon
// seals on graceful shutdown before tearing down connections, so the
// unsubscribe storm of closing clients cannot erase registrations that a
// restart must recover. A clean client unsubscribe before the seal is
// journaled normally and will not be recovered.
func (l *Log) Seal() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sealed = true
}

// Close seals, flushes, and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.sealed, l.closed = true, true
	flusher := l.flusherDone
	var err error
	if l.f != nil {
		if !l.opts.Fsync.Never {
			l.f.Sync()
		}
		err = l.f.Close()
	}
	l.mu.Unlock()
	if flusher != nil {
		close(flusher)
	}
	return err
}

// flusher fsyncs dirty state every Fsync.Interval.
func (l *Log) flusher() {
	t := time.NewTicker(l.opts.Fsync.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.flusherDone:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				if l.f.Sync() == nil {
					l.fsyncs++
				}
				l.dirty = false
			}
			l.mu.Unlock()
		}
	}
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:     l.appends,
		Snapshots:   l.snapshots,
		Fsyncs:      l.fsyncs,
		Replayed:    l.replayed,
		Truncated:   l.truncated,
		LogBytes:    l.logBytes,
		LiveSubs:    len(l.state.Subs),
		LiveQueries: len(l.state.Queries),
	}
}

// WriteMetrics implements broker.Collector, exporting the WAL counters on
// the daemon's Prometheus endpoint.
func (l *Log) WriteMetrics(w io.Writer) {
	st := l.Stats()
	broker.WriteCounter(w, "thematicep_wal_appends_total", "Registration records appended to the WAL.", st.Appends)
	broker.WriteCounter(w, "thematicep_wal_snapshots_total", "WAL snapshots written.", st.Snapshots)
	broker.WriteCounter(w, "thematicep_wal_fsyncs_total", "WAL fsync calls issued.", st.Fsyncs)
	broker.WriteGauge(w, "thematicep_wal_replayed_records", "Records recovered from the log at startup.", st.Replayed)
	broker.WriteGauge(w, "thematicep_wal_truncated_bytes", "Bytes of torn or corrupt log tail discarded at startup.", int(st.Truncated))
	broker.WriteGauge(w, "thematicep_wal_log_bytes", "Current WAL file size.", int(st.LogBytes))
	broker.WriteGauge(w, "thematicep_wal_live_subscriptions", "Durable subscription registrations in the materialized state.", st.LiveSubs)
	broker.WriteGauge(w, "thematicep_wal_live_queries", "Durable continuous-query registrations in the materialized state.", st.LiveQueries)
}
