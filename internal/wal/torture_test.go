package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// op is one journaled operation in the torture sequence.
type op struct {
	kind byte
	key  string
}

var tortureOps = []op{
	{recSubscribe, "a"},
	{recSubscribe, "b"},
	{recQuery, "q1"},
	{recUnsubscribe, "a"},
	{recSubscribe, "c"},
	{recUnquery, "q1"},
	{recQuery, "q2"},
	{recUnsubscribe, "b"},
}

// simulate folds the first k torture ops into the expected key sets.
func simulate(k int) (subs, queries map[string]bool) {
	subs, queries = map[string]bool{}, map[string]bool{}
	for _, o := range tortureOps[:k] {
		switch o.kind {
		case recSubscribe:
			subs[o.key] = true
		case recUnsubscribe:
			delete(subs, o.key)
		case recQuery:
			queries[o.key] = true
		case recUnquery:
			delete(queries, o.key)
		}
	}
	return subs, queries
}

func keys(m map[string]bool) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func stateKeys(st State) (subs, queries map[string]bool) {
	subs, queries = map[string]bool{}, map[string]bool{}
	for id := range st.Subs {
		subs[id] = true
	}
	for name := range st.Queries {
		queries[name] = true
	}
	return subs, queries
}

// buildTortureLog writes the op sequence and returns the raw log bytes plus
// each record's end offset (boundaries[j] = offset just past record j),
// captured from the writer side so the reader is not its own oracle.
func buildTortureLog(t *testing.T) (data []byte, boundaries []int64) {
	t.Helper()
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncPolicy{Never: true}})
	for _, o := range tortureOps {
		switch o.kind {
		case recSubscribe:
			l.Subscribed(o.key, testSub(o.key))
		case recUnsubscribe:
			l.Unsubscribed(o.key)
		case recQuery:
			l.QueryRegistered(testSpec(o.key))
		case recUnquery:
			l.QueryUnregistered(o.key)
		}
		boundaries = append(boundaries, l.Stats().LogBytes)
	}
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != boundaries[len(boundaries)-1] {
		t.Fatalf("log is %d bytes but last boundary is %d", len(data), boundaries[len(boundaries)-1])
	}
	return data, boundaries
}

// intact counts the records whose bytes lie entirely before offset p.
func intact(boundaries []int64, p int64) int {
	n := 0
	for _, b := range boundaries {
		if b <= p {
			n++
		}
	}
	return n
}

// Truncating the log at EVERY byte boundary must recover exactly the records
// that fully fit — the longest valid prefix — and resume appends at a clean
// offset. This is the crash-mid-append contract.
func TestTortureTruncate(t *testing.T) {
	data, boundaries := buildTortureLog(t)
	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, st, err := Open(dir, Options{Fsync: FsyncPolicy{Never: true}})
		if err != nil {
			t.Fatalf("cut=%d: Open failed on a torn log: %v", cut, err)
		}
		k := intact(boundaries, int64(cut))
		wantSubs, wantQueries := simulate(k)
		gotSubs, gotQueries := stateKeys(st)
		if keys(gotSubs) != keys(wantSubs) || keys(gotQueries) != keys(wantQueries) {
			t.Fatalf("cut=%d (%d intact records): recovered subs=%s queries=%s, want subs=%s queries=%s",
				cut, k, keys(gotSubs), keys(gotQueries), keys(wantSubs), keys(wantQueries))
		}
		if got := l.Stats().Replayed; got != k {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, got, k)
		}
		// The log must be writable after recovery: append, reopen, verify.
		l.Subscribed("post", testSub("post"))
		l.Close()
		l2, st2, err := Open(dir, Options{Fsync: FsyncPolicy{Never: true}})
		if err != nil {
			t.Fatalf("cut=%d: reopen after post-recovery append: %v", cut, err)
		}
		if st2.Subs["post"] == nil {
			t.Fatalf("cut=%d: append after recovery was lost", cut)
		}
		l2.Close()
	}
}

// Corrupting ONE byte at every position must never invent registrations:
// recovery yields some strict prefix of the original records — at least the
// records living entirely before the damage — or, for snapshot damage, a
// loud failure. Never a silent wrong answer.
func TestTortureBitFlip(t *testing.T) {
	data, boundaries := buildTortureLog(t)
	for pos := 0; pos < len(data); pos++ {
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= 0xFF
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		l, st, err := Open(dir, Options{Fsync: FsyncPolicy{Never: true}})
		if err != nil {
			t.Fatalf("pos=%d: Open failed on log corruption (must truncate, not error): %v", pos, err)
		}
		gotSubs, gotQueries := stateKeys(st)
		minK := intact(boundaries, int64(pos))
		matched := -1
		for k := minK; k <= len(tortureOps); k++ {
			wantSubs, wantQueries := simulate(k)
			if keys(gotSubs) == keys(wantSubs) && keys(gotQueries) == keys(wantQueries) {
				matched = k
				break
			}
		}
		if matched < 0 {
			t.Fatalf("pos=%d: recovered subs=%s queries=%s matches no prefix ≥ %d of the original sequence",
				pos, keys(gotSubs), keys(gotQueries), minK)
		}
		l.Close()
	}
}

// Same discipline for the snapshot file: damage at any byte must surface as
// ErrBadSnapshot (or recover the identical state if the byte is redundant),
// never as a silently different registration set.
func TestTortureSnapshotBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncPolicy{Never: true}})
	for _, o := range tortureOps {
		switch o.kind {
		case recSubscribe:
			l.Subscribed(o.key, testSub(o.key))
		case recUnsubscribe:
			l.Unsubscribed(o.key)
		case recQuery:
			l.QueryRegistered(testSpec(o.key))
		case recUnquery:
			l.QueryUnregistered(o.key)
		}
	}
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	snap, err := os.ReadFile(filepath.Join(dir, "snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	wantSubs, wantQueries := simulate(len(tortureOps))

	for pos := 0; pos < len(snap); pos++ {
		corrupted := append([]byte(nil), snap...)
		corrupted[pos] ^= 0xFF
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, "snapshot"), corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, st, err := Open(cdir, Options{Fsync: FsyncPolicy{Never: true}})
		if err != nil {
			continue // loud failure is the expected outcome
		}
		gotSubs, gotQueries := stateKeys(st)
		if keys(gotSubs) != keys(wantSubs) || keys(gotQueries) != keys(wantQueries) {
			t.Fatalf("pos=%d: corrupt snapshot opened with DIFFERENT state: subs=%s queries=%s",
				pos, keys(gotSubs), keys(gotQueries))
		}
		l2.Close()
	}
}

// FuzzScanRecords asserts the prefix-scan invariants on arbitrary bytes: no
// panic, the valid offset never exceeds the input, and rescanning the valid
// prefix is a fixed point (same records, same offset).
func FuzzScanRecords(f *testing.F) {
	data, _ := buildTortureLogF(f)
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte("TEPWAL1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		recs, valid := scanRecords(in)
		if valid < 0 || valid > int64(len(in)) {
			t.Fatalf("valid offset %d out of range [0,%d]", valid, len(in))
		}
		recs2, valid2 := scanRecords(in[:valid])
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("rescan of valid prefix not a fixed point: %d/%d records, %d/%d bytes",
				len(recs2), len(recs), valid2, valid)
		}
	})
}

// buildTortureLogF is buildTortureLog for a fuzz seed corpus.
func buildTortureLogF(f *testing.F) ([]byte, []int64) {
	f.Helper()
	dir := f.TempDir()
	l, _, err := Open(dir, Options{Fsync: FsyncPolicy{Never: true}})
	if err != nil {
		f.Fatal(err)
	}
	var boundaries []int64
	for i, o := range tortureOps {
		switch o.kind {
		case recSubscribe:
			l.Subscribed(o.key, testSub(fmt.Sprintf("fuzz-%d", i)))
		case recUnsubscribe:
			l.Unsubscribed(o.key)
		case recQuery:
			l.QueryRegistered(testSpec(o.key))
		case recUnquery:
			l.QueryUnregistered(o.key)
		}
		boundaries = append(boundaries, l.Stats().LogBytes)
	}
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		f.Fatal(err)
	}
	if !bytes.HasPrefix(data, logMagic) {
		f.Fatal("torture log missing magic")
	}
	return data, boundaries
}
