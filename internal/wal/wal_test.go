package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/event"
)

func testSub(id string) *event.Subscription {
	return &event.Subscription{
		ID:    id,
		Theme: []string{"transport", "traffic"},
		Predicates: []event.Predicate{
			{Attr: "road", Value: "closed", ApproxValue: true},
		},
	}
}

func testSpec(name string) *broker.QuerySpec {
	return &broker.QuerySpec{
		Name:         name,
		Kind:         "sequence",
		Subscription: testSub(""),
		Window:       5 * time.Second,
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, State) {
	t.Helper()
	l, st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, st
}

// The fundamental contract: everything journaled before a crash is there
// after reopen, and unsubscribes erase their registrations.
func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, st := mustOpen(t, dir, Options{})
	if len(st.Subs) != 0 || len(st.Queries) != 0 {
		t.Fatalf("fresh log recovered state: %+v", st)
	}
	l.Subscribed("s1", testSub("s1"))
	l.Subscribed("s2", testSub("s2"))
	l.Unsubscribed("s1")
	l.QueryRegistered(testSpec("q1"))
	l.QueryRegistered(testSpec("q2"))
	l.QueryUnregistered("q2")
	l.Close()

	l2, st2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(st2.Subs) != 1 || st2.Subs["s2"] == nil {
		t.Fatalf("recovered subs %v, want exactly s2", st2.Subs)
	}
	if !reflect.DeepEqual(st2.Subs["s2"], testSub("s2")) {
		t.Fatalf("s2 did not roundtrip: %+v", st2.Subs["s2"])
	}
	if len(st2.Queries) != 1 || st2.Queries["q1"] == nil {
		t.Fatalf("recovered queries %v, want exactly q1", st2.Queries)
	}
	if got := l2.Stats().Replayed; got != 6 {
		t.Fatalf("replayed %d records, want 6", got)
	}
}

// A snapshot truncates the log and a reopen recovers purely from it; records
// appended after the snapshot replay over it.
func TestSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		l.Subscribed(string(rune('a'+i)), testSub(string(rune('a'+i))))
	}
	if err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if got := l.Stats().LogBytes; got != int64(len(logMagic)) {
		t.Fatalf("post-snapshot log is %d bytes, want just the magic (%d)", got, len(logMagic))
	}
	l.Unsubscribed("a")
	l.Subscribed("z", testSub("z"))
	l.Close()

	l2, st := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(st.Subs) != 10 { // 10 - a + z
		t.Fatalf("recovered %d subs, want 10", len(st.Subs))
	}
	if st.Subs["a"] != nil || st.Subs["z"] == nil {
		t.Fatalf("log-over-snapshot replay wrong: a=%v z=%v", st.Subs["a"], st.Subs["z"])
	}
	if got := l2.Stats().Replayed; got != 2 {
		t.Fatalf("replayed %d log records, want only the 2 post-snapshot ones", got)
	}
}

// SnapshotEvery triggers automatic compaction.
func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SnapshotEvery: 5})
	defer l.Close()
	for i := 0; i < 12; i++ {
		l.Subscribed(string(rune('a'+i)), testSub(string(rune('a'+i))))
	}
	st := l.Stats()
	if st.Snapshots != 2 {
		t.Fatalf("12 appends at SnapshotEvery=5 took %d snapshots, want 2", st.Snapshots)
	}
	if st.LiveSubs != 12 {
		t.Fatalf("live subs %d, want 12", st.LiveSubs)
	}
}

// Seal freezes the durable state: the teardown unsubscribe storm of a
// graceful shutdown must not erase registrations a restart should recover.
func TestSealDropsAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	l.Subscribed("keep", testSub("keep"))
	l.Seal()
	l.Unsubscribed("keep")
	l.QueryRegistered(testSpec("late"))
	l.Close()

	l2, st := mustOpen(t, dir, Options{})
	defer l2.Close()
	if st.Subs["keep"] == nil {
		t.Fatal("post-seal unsubscribe erased a registration that must survive restart")
	}
	if len(st.Queries) != 0 {
		t.Fatal("post-seal append leaked into the log")
	}
}

// A corrupt snapshot must fail Open loudly — silently starting empty would
// orphan every durable registration.
func TestCorruptSnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	l.Subscribed("s1", testSub("s1"))
	if err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	l.Close()

	snap := filepath.Join(dir, "snapshot")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // break the checksum
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

// Fsync policies: "always" fsyncs per append, "never" not at all, an
// interval policy flushes in the background.
func TestFsyncPolicies(t *testing.T) {
	always, _ := mustOpen(t, t.TempDir(), Options{})
	always.Subscribed("a", testSub("a"))
	always.Subscribed("b", testSub("b"))
	if got := always.Stats().Fsyncs; got != 2 {
		t.Fatalf("always policy issued %d fsyncs for 2 appends, want 2", got)
	}
	always.Close()

	never, _ := mustOpen(t, t.TempDir(), Options{Fsync: FsyncPolicy{Never: true}})
	never.Subscribed("a", testSub("a"))
	if got := never.Stats().Fsyncs; got != 0 {
		t.Fatalf("never policy issued %d fsyncs, want 0", got)
	}
	never.Close()

	interval, _ := mustOpen(t, t.TempDir(), Options{Fsync: FsyncPolicy{Interval: time.Millisecond}})
	interval.Subscribed("a", testSub("a"))
	deadline := time.Now().Add(2 * time.Second)
	for interval.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	interval.Close()
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		err  bool
	}{
		{"always", FsyncPolicy{}, false},
		{"", FsyncPolicy{}, false},
		{"NEVER", FsyncPolicy{Never: true}, false},
		{"100ms", FsyncPolicy{Interval: 100 * time.Millisecond}, false},
		{"-5s", FsyncPolicy{}, true},
		{"often", FsyncPolicy{}, true},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseFsyncPolicy(%q) err=%v, want err=%v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}
