// Package baseline implements the two non-approximate matching approaches
// the paper compares against (Table 1):
//
//   - the content-based matcher: exact string comparison of terms, as in
//     SIENA-style content-based publish/subscribe;
//   - the concept-based matcher: query rewriting against an explicit
//     knowledge representation (here the thesaurus), the stand-in for the
//     WordNet rewriting approach of the prior-work comparison (§5, [16]).
package baseline

import (
	"thematicep/internal/event"
	"thematicep/internal/text"
	"thematicep/internal/thesaurus"
)

// ContentMatcher is the content-based approach: the ~ operator is ignored
// (the approach has no notion of approximation) and every predicate must
// match a tuple exactly.
type ContentMatcher struct{}

// Matched reports exact satisfaction of every predicate.
func (ContentMatcher) Matched(s *event.Subscription, e *event.Event) bool {
	return event.ExactMatch(s, e)
}

// Score makes ContentMatcher usable by the ranking-based evaluation
// harness: 1 for a match, 0 otherwise.
func (m ContentMatcher) Score(s *event.Subscription, e *event.Event) float64 {
	if m.Matched(s, e) {
		return 1
	}
	return 0
}

// RewritingMatcher is the concept-based approach: each ~-relaxed attribute
// or value is rewritten into the set of its thesaurus synonyms, which is
// equivalent to expanding the subscription into the cross product of exact
// subscriptions. A predicate is satisfied when some tuple matches one of
// the rewrites.
type RewritingMatcher struct {
	th *thesaurus.T
}

// NewRewriting builds a rewriting matcher over a thesaurus.
func NewRewriting(th *thesaurus.T) *RewritingMatcher {
	return &RewritingMatcher{th: th}
}

// Matched reports whether every predicate is satisfied by some tuple under
// rewriting semantics. Event attributes are unique, so predicates are
// checked independently (no injective assignment is needed: two predicates
// cannot both be satisfied only by the same tuple unless they name the same
// attribute concept, which rewriting treats as satisfied anyway).
func (m *RewritingMatcher) Matched(s *event.Subscription, e *event.Event) bool {
	for _, p := range s.Predicates {
		if !m.predicateMatched(p, e) {
			return false
		}
	}
	return true
}

// Score is 1 for a match, 0 otherwise.
func (m *RewritingMatcher) Score(s *event.Subscription, e *event.Event) float64 {
	if m.Matched(s, e) {
		return 1
	}
	return 0
}

func (m *RewritingMatcher) predicateMatched(p event.Predicate, e *event.Event) bool {
	// Rewriting happens at match time, as in S-TOPSS-style architectures
	// (and the WordNet rewriter of the prior-work comparison): the
	// candidate term sets are enumerated from the knowledge base for every
	// match. This cost structure — knowledge-base expansion per predicate —
	// is what the paper's throughput comparison measures.
	attrCands := m.candidates(p.Attr, p.ApproxAttr)
	valueCands := m.candidates(p.Value, p.ApproxValue)
	for _, t := range e.Tuples {
		if !termIn(t.Attr, attrCands) {
			continue
		}
		if p.Op == event.OpEq {
			if termIn(t.Value, valueCands) {
				return true
			}
		} else if event.EvalOp(p.Op, t.Value, p.Value) {
			return true
		}
	}
	return false
}

// candidates returns the canonical rewrite set of a term: itself plus, when
// relaxed, every thesaurus synonym.
func (m *RewritingMatcher) candidates(term string, approx bool) []string {
	out := []string{text.Canonical(term)}
	if !approx {
		return out
	}
	for _, s := range m.th.Synonyms(term) {
		out = append(out, text.Canonical(s))
	}
	return out
}

func termIn(eventTerm string, candidates []string) bool {
	c := text.Canonical(eventTerm)
	for _, cand := range candidates {
		if c == cand {
			return true
		}
	}
	return false
}

// RewriteCount returns the number of exact subscriptions the rewriting
// approach implicitly maintains for s: the product over predicates of
// |attribute rewrites| x |value rewrites|. The paper uses this to argue the
// subscription-coverage cost of non-approximate approaches (§5.2.3: 94
// approximate subscriptions ≈ 48,000 exact ones).
func (m *RewritingMatcher) RewriteCount(s *event.Subscription) int {
	total := 1
	for _, p := range s.Predicates {
		attrs, values := 1, 1
		if p.ApproxAttr {
			attrs += len(m.th.Synonyms(p.Attr))
		}
		if p.ApproxValue {
			values += len(m.th.Synonyms(p.Value))
		}
		total *= attrs * values
	}
	return total
}
