package baseline

import (
	"testing"

	"thematicep/internal/event"
	"thematicep/internal/thesaurus"
)

func ev(tuples ...event.Tuple) *event.Event {
	return &event.Event{Tuples: tuples}
}

func TestContentMatcher(t *testing.T) {
	m := ContentMatcher{}
	e := ev(
		event.Tuple{Attr: "type", Value: "increased energy consumption event"},
		event.Tuple{Attr: "device", Value: "computer"},
	)
	tests := []struct {
		name string
		sub  *event.Subscription
		want bool
	}{
		{
			name: "exact match",
			sub: &event.Subscription{Predicates: []event.Predicate{
				{Attr: "device", Value: "computer"},
			}},
			want: true,
		},
		{
			name: "synonym does not match",
			sub: &event.Subscription{Predicates: []event.Predicate{
				{Attr: "device", Value: "laptop"},
			}},
			want: false,
		},
		{
			name: "tilde ignored",
			sub: &event.Subscription{Predicates: []event.Predicate{
				{Attr: "device", Value: "laptop", ApproxValue: true},
			}},
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Matched(tt.sub, e); got != tt.want {
				t.Errorf("Matched = %v, want %v", got, tt.want)
			}
			wantScore := 0.0
			if tt.want {
				wantScore = 1.0
			}
			if got := m.Score(tt.sub, e); got != wantScore {
				t.Errorf("Score = %v, want %v", got, wantScore)
			}
		})
	}
}

func TestRewritingMatcher(t *testing.T) {
	m := NewRewriting(thesaurus.Default())
	e := ev(
		event.Tuple{Attr: "type", Value: "increased energy consumption event"},
		event.Tuple{Attr: "device", Value: "computer"},
		event.Tuple{Attr: "office", Value: "room 112"},
	)
	tests := []struct {
		name string
		sub  *event.Subscription
		want bool
	}{
		{
			name: "synonym value with tilde matches",
			sub: &event.Subscription{Predicates: []event.Predicate{
				{Attr: "device", Value: "laptop", ApproxValue: true},
			}},
			want: true,
		},
		{
			name: "synonym without tilde does not match",
			sub: &event.Subscription{Predicates: []event.Predicate{
				{Attr: "device", Value: "laptop"},
			}},
			want: false,
		},
		{
			name: "unrelated value does not match",
			sub: &event.Subscription{Predicates: []event.Predicate{
				{Attr: "device", Value: "rainfall", ApproxValue: true},
			}},
			want: false,
		},
		{
			name: "exact predicate still works",
			sub: &event.Subscription{Predicates: []event.Predicate{
				{Attr: "office", Value: "room 112"},
				{Attr: "device", Value: "pc", ApproxValue: true},
			}},
			want: true,
		},
		{
			name: "one failing predicate fails all",
			sub: &event.Subscription{Predicates: []event.Predicate{
				{Attr: "device", Value: "laptop", ApproxValue: true},
				{Attr: "office", Value: "room 999"},
			}},
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Matched(tt.sub, e); got != tt.want {
				t.Errorf("Matched = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRewritingAttrApproximation(t *testing.T) {
	m := NewRewriting(thesaurus.Default())
	// Event uses "urban area" as attribute; subscription uses "city~".
	e := ev(event.Tuple{Attr: "urban area", Value: "galway"})
	sub := &event.Subscription{Predicates: []event.Predicate{
		{Attr: "city", Value: "galway", ApproxAttr: true},
	}}
	if !m.Matched(sub, e) {
		t.Error("attribute rewriting failed for city~ vs urban area")
	}
	noTilde := &event.Subscription{Predicates: []event.Predicate{
		{Attr: "city", Value: "galway"},
	}}
	if m.Matched(noTilde, e) {
		t.Error("attribute matched without tilde")
	}
}

func TestRewritingHomographBridges(t *testing.T) {
	m := NewRewriting(thesaurus.Default())
	// The rewriting approach cannot disambiguate: "bus~" rewrites to
	// "coach", which matches a tutoring event's coach. This is the
	// characteristic false positive thematic matching avoids.
	e := ev(event.Tuple{Attr: "instructor", Value: "coach"})
	sub := &event.Subscription{Predicates: []event.Predicate{
		{Attr: "instructor", Value: "bus", ApproxValue: true},
	}}
	if !m.Matched(sub, e) {
		t.Error("expected the homograph bridge false positive")
	}
}

func TestRewriteCount(t *testing.T) {
	th := thesaurus.Default()
	m := NewRewriting(th)
	sub := &event.Subscription{Predicates: []event.Predicate{
		{Attr: "device", Value: "laptop", ApproxAttr: true, ApproxValue: true},
		{Attr: "office", Value: "room 112"},
	}}
	attrSyn := len(th.Synonyms("device"))
	valSyn := len(th.Synonyms("laptop"))
	want := (1 + attrSyn) * (1 + valSyn) * 1
	if got := m.RewriteCount(sub); got != want {
		t.Errorf("RewriteCount = %d, want %d", got, want)
	}
	exact := &event.Subscription{Predicates: []event.Predicate{
		{Attr: "a", Value: "b"},
	}}
	if got := m.RewriteCount(exact); got != 1 {
		t.Errorf("RewriteCount(exact) = %d, want 1", got)
	}
}
