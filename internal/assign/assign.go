// Package assign solves the rectangular assignment problems at the heart of
// the approximate matcher (§3.5): the top-1 mapping is a maximum-weight
// assignment of subscription predicates to event tuples over the combined
// similarity matrix, and the top-k mappings are the k best assignments,
// enumerated with Murty's partitioning algorithm.
//
// Weights are arbitrary real numbers; use log-similarities to make the
// maximum-sum assignment the maximum-product mapping.
package assign

import (
	"container/heap"
	"math"
)

// NegInf marks a forbidden pair. Any assignment using a NegInf pair is
// infeasible.
var NegInf = math.Inf(-1)

// Assignment is a solution: Cols[i] is the column assigned to row i
// (always a valid column index in a feasible solution), and Total is the sum
// of the chosen weights.
type Assignment struct {
	Cols  []int
	Total float64
}

// Best returns the maximum-total assignment of every row to a distinct
// column. It requires len(weights) <= columns; it returns ok=false when the
// problem is infeasible (more rows than columns, or no feasible pairing
// avoiding NegInf weights).
func Best(weights [][]float64) (Assignment, bool) {
	return bestConstrained(weights, nil, nil)
}

// pairKey identifies one (row, col) cell.
type pairKey struct{ row, col int }

// bestConstrained solves the assignment with forced pairs (row -> col) and
// forbidden cells. Forced rows keep their forced column; forbidden cells are
// never used.
func bestConstrained(weights [][]float64, forced map[int]int, forbidden map[pairKey]bool) (Assignment, bool) {
	n := len(weights)
	if n == 0 {
		return Assignment{}, true
	}
	m := len(weights[0])
	if n > m {
		return Assignment{}, false
	}

	// Apply constraints onto a working copy. A forced pair (r, c) removes
	// competition by forbidding row r's other cells and column c for others.
	w := make([][]float64, n)
	usedCol := make(map[int]bool, len(forced))
	for _, c := range forced {
		if usedCol[c] {
			return Assignment{}, false // two rows forced to one column
		}
		usedCol[c] = true
	}
	for i := 0; i < n; i++ {
		w[i] = make([]float64, m)
		fc, isForced := forcedCol(forced, i)
		for j := 0; j < m; j++ {
			switch {
			case isForced && j != fc:
				w[i][j] = NegInf
			case !isForced && usedCol[j]:
				w[i][j] = NegInf
			case forbidden[pairKey{i, j}]:
				w[i][j] = NegInf
			default:
				w[i][j] = weights[i][j]
			}
		}
		if isForced && weights[i][fc] == NegInf {
			return Assignment{}, false
		}
	}
	return jv(w)
}

func forcedCol(forced map[int]int, row int) (int, bool) {
	if forced == nil {
		return 0, false
	}
	c, ok := forced[row]
	return c, ok
}

// jv is the Jonker-Volgenant-style shortest augmenting path algorithm for
// rectangular maximization (rows <= cols). It converts to minimization
// internally. Infeasible cells carry NegInf weight (=> +Inf cost).
func jv(weights [][]float64) (Assignment, bool) {
	n := len(weights)
	m := len(weights[0])

	// cost = -weight; +Inf for forbidden.
	inf := math.Inf(1)
	cost := func(i, j int) float64 {
		w := weights[i][j]
		if w == NegInf {
			return inf
		}
		return -w
	}

	// 1-based potentials over rows (u) and cols (v); p[j] = row matched to
	// col j (0 = none). Standard e-maxx formulation.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := 0; j <= m; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || math.IsInf(delta, 1) {
				return Assignment{}, false // no feasible augmenting path
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	cols := make([]int, n)
	total := 0.0
	for j := 1; j <= m; j++ {
		if p[j] == 0 {
			continue
		}
		cols[p[j]-1] = j - 1
		w := weights[p[j]-1][j-1]
		if w == NegInf {
			return Assignment{}, false
		}
		total += w
	}
	return Assignment{Cols: cols, Total: total}, true
}

// node is a Murty subproblem with its solved assignment.
type node struct {
	forced    map[int]int
	forbidden map[pairKey]bool
	sol       Assignment
}

// nodeHeap is a max-heap by solution total.
type nodeHeap []node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].sol.Total > h[j].sol.Total }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK returns up to k distinct assignments in non-increasing total order
// using Murty's algorithm. It returns fewer than k when fewer feasible
// assignments exist.
func TopK(weights [][]float64, k int) []Assignment {
	if k <= 0 {
		return nil
	}
	best, ok := Best(weights)
	if !ok {
		return nil
	}
	n := len(weights)

	h := &nodeHeap{{forced: nil, forbidden: nil, sol: best}}
	heap.Init(h)
	var out []Assignment

	for len(out) < k && h.Len() > 0 {
		cur := heap.Pop(h).(node)
		out = append(out, cur.sol)

		// Partition: for each non-forced row (in index order), create a
		// subproblem that keeps earlier rows at their current columns and
		// forbids this row's current column.
		forcedSoFar := make(map[int]int, len(cur.forced))
		for r, c := range cur.forced {
			forcedSoFar[r] = c
		}
		for row := 0; row < n; row++ {
			if _, isForced := cur.forced[row]; isForced {
				continue
			}
			forbidden := make(map[pairKey]bool, len(cur.forbidden)+1)
			for pk := range cur.forbidden {
				forbidden[pk] = true
			}
			forbidden[pairKey{row, cur.sol.Cols[row]}] = true

			forced := make(map[int]int, len(forcedSoFar))
			for r, c := range forcedSoFar {
				forced[r] = c
			}

			if sol, ok := bestConstrained(weights, forced, forbidden); ok {
				heap.Push(h, node{forced: forced, forbidden: forbidden, sol: sol})
			}
			// Subsequent subproblems keep this row fixed.
			forcedSoFar[row] = cur.sol.Cols[row]
		}
	}
	return out
}
