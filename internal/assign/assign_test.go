package assign

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBestSimpleSquare(t *testing.T) {
	w := [][]float64{
		{1, 2, 3},
		{2, 4, 6},
		{3, 6, 9},
	}
	sol, ok := Best(w)
	if !ok {
		t.Fatal("infeasible")
	}
	// Optimal: row0->col0(1), row1->col1(4), row2->col2(9) = 14? Check all
	// permutations: (0,1,2)=1+4+9=14, (0,2,1)=1+6+6=13, (1,0,2)=2+2+9=13,
	// (1,2,0)=2+6+3=11, (2,0,1)=3+2+6=11, (2,1,0)=3+4+3=10. Max = 14.
	if sol.Total != 14 {
		t.Errorf("Total = %v, want 14 (cols %v)", sol.Total, sol.Cols)
	}
}

func TestBestRectangular(t *testing.T) {
	w := [][]float64{
		{0.1, 0.9, 0.2, 0.3},
		{0.8, 0.85, 0.1, 0.2},
	}
	sol, ok := Best(w)
	if !ok {
		t.Fatal("infeasible")
	}
	// row0->col1 (0.9), row1->col0 (0.8) = 1.7 beats row0->col1,row1->col1 (invalid) etc.
	if math.Abs(sol.Total-1.7) > 1e-12 {
		t.Errorf("Total = %v, want 1.7", sol.Total)
	}
	if sol.Cols[0] != 1 || sol.Cols[1] != 0 {
		t.Errorf("Cols = %v", sol.Cols)
	}
}

func TestBestMoreRowsThanCols(t *testing.T) {
	w := [][]float64{{1}, {2}}
	if _, ok := Best(w); ok {
		t.Error("2 rows x 1 col should be infeasible")
	}
}

func TestBestEmpty(t *testing.T) {
	sol, ok := Best(nil)
	if !ok || sol.Total != 0 || len(sol.Cols) != 0 {
		t.Errorf("empty = %+v, %v", sol, ok)
	}
}

func TestBestForbiddenCells(t *testing.T) {
	w := [][]float64{
		{NegInf, 5},
		{NegInf, NegInf},
	}
	if _, ok := Best(w); ok {
		t.Error("row of NegInf should be infeasible")
	}
	w2 := [][]float64{
		{NegInf, 5},
		{3, NegInf},
	}
	sol, ok := Best(w2)
	if !ok || sol.Total != 8 {
		t.Errorf("sol = %+v, %v; want total 8", sol, ok)
	}
}

func TestBestNegativeWeights(t *testing.T) {
	w := [][]float64{
		{-1, -2},
		{-3, -4},
	}
	sol, ok := Best(w)
	if !ok {
		t.Fatal("infeasible")
	}
	// (-1)+(-4) = -5 vs (-2)+(-3) = -5: tie; both optimal.
	if sol.Total != -5 {
		t.Errorf("Total = %v, want -5", sol.Total)
	}
}

// bruteBest enumerates all injective assignments (reference implementation).
func bruteBest(w [][]float64) (float64, bool) {
	n := len(w)
	if n == 0 {
		return 0, true
	}
	m := len(w[0])
	if n > m {
		return 0, false
	}
	best := math.Inf(-1)
	cols := make([]int, n)
	used := make([]bool, m)
	var rec func(i int, total float64)
	rec = func(i int, total float64) {
		if i == n {
			if total > best {
				best = total
			}
			return
		}
		for j := 0; j < m; j++ {
			if used[j] || w[i][j] == NegInf {
				continue
			}
			used[j] = true
			cols[i] = j
			rec(i+1, total+w[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	if math.IsInf(best, -1) {
		return 0, false
	}
	return best, true
}

func TestBestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(5)
		m := n + r.Intn(4)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				if r.Intn(6) == 0 {
					w[i][j] = NegInf
				} else {
					w[i][j] = math.Round(r.Float64()*100) / 10
				}
			}
		}
		want, wantOK := bruteBest(w)
		got, gotOK := Best(w)
		if wantOK != gotOK {
			t.Fatalf("trial %d: feasibility %v vs %v (w=%v)", trial, gotOK, wantOK, w)
		}
		if wantOK && math.Abs(got.Total-want) > 1e-9 {
			t.Fatalf("trial %d: total %v, want %v (w=%v)", trial, got.Total, want, w)
		}
		if gotOK {
			// Verify the assignment is injective and totals correctly.
			seen := make(map[int]bool)
			sum := 0.0
			for i, c := range got.Cols {
				if c < 0 || c >= m || seen[c] {
					t.Fatalf("trial %d: invalid cols %v", trial, got.Cols)
				}
				seen[c] = true
				sum += w[i][c]
			}
			if math.Abs(sum-got.Total) > 1e-9 {
				t.Fatalf("trial %d: reported total %v != recomputed %v", trial, got.Total, sum)
			}
		}
	}
}

// bruteTopK enumerates all assignment totals sorted descending.
func bruteTopK(w [][]float64) []float64 {
	n := len(w)
	if n == 0 {
		return nil
	}
	m := len(w[0])
	var totals []float64
	used := make([]bool, m)
	var rec func(i int, total float64)
	rec = func(i int, total float64) {
		if i == n {
			totals = append(totals, total)
			return
		}
		for j := 0; j < m; j++ {
			if used[j] || w[i][j] == NegInf {
				continue
			}
			used[j] = true
			rec(i+1, total+w[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	sort.Sort(sort.Reverse(sort.Float64Slice(totals)))
	return totals
}

func TestTopKMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(4)
		m := n + r.Intn(3)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				w[i][j] = math.Round(r.Float64()*1000) / 10
			}
		}
		k := 1 + r.Intn(6)
		want := bruteTopK(w)
		if len(want) > k {
			want = want[:k]
		}
		got := TopK(w, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d assignments, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Total-want[i]) > 1e-9 {
				t.Fatalf("trial %d: top-%d total %v, want %v", trial, i+1, got[i].Total, want[i])
			}
			if i > 0 && got[i].Total > got[i-1].Total+1e-9 {
				t.Fatalf("trial %d: not sorted: %v after %v", trial, got[i].Total, got[i-1].Total)
			}
		}
	}
}

func TestTopKDistinctAssignments(t *testing.T) {
	w := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
	}
	got := TopK(w, 10)
	// P(3,2) = 6 feasible assignments.
	if len(got) != 6 {
		t.Fatalf("got %d assignments, want 6", len(got))
	}
	seen := make(map[[2]int]bool)
	for _, a := range got {
		key := [2]int{a.Cols[0], a.Cols[1]}
		if seen[key] {
			t.Fatalf("duplicate assignment %v", key)
		}
		seen[key] = true
	}
}

func TestTopKZeroAndInfeasible(t *testing.T) {
	if got := TopK([][]float64{{1}}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := TopK([][]float64{{NegInf}}, 3); got != nil {
		t.Error("infeasible should return nil")
	}
}
