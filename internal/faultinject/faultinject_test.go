package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipe returns both ends of an in-memory connection with faults injected
// on the first end.
func pipe(i *Injector) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return i.Wrap(a), b
}

// TestDeterministicSequence: two injectors with the same seed make the
// same fault decisions for the same operation sequence.
func TestDeterministicSequence(t *testing.T) {
	sequence := func(seed int64) []bool {
		i := New(Config{Seed: seed, ResetProb: 0.5})
		out := make([]bool, 64)
		for k := range out {
			out[k] = i.roll() < i.cfg.ResetProb
		}
		return out
	}
	a, b := sequence(7), sequence(7)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at draw %d", k)
		}
	}
	if c := sequence(8); func() bool {
		for k := range a {
			if a[k] != c[k] {
				return false
			}
		}
		return true
	}() {
		t.Error("different seeds produced an identical 64-draw sequence")
	}
}

// TestCorruptionFlipsBytes: with CorruptProb 1 every write arrives
// damaged, and the original buffer is left untouched.
func TestCorruptionFlipsBytes(t *testing.T) {
	i := New(Config{Seed: 1, CorruptProb: 1})
	a, b := pipe(i)
	defer a.Close()
	defer b.Close()

	payload := []byte("hello, federation")
	orig := append([]byte(nil), payload...)
	go a.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Error("payload arrived uncorrupted with CorruptProb=1")
	}
	if !bytes.Equal(payload, orig) {
		t.Error("corruption mutated the caller's buffer")
	}
	if i.Stats().Corruptions == 0 {
		t.Error("corruption not counted")
	}
}

// TestPartitionFailsIO: an engaged partition refuses dials and fails
// reads/writes on live connections; healing lets dials through again.
func TestPartitionFailsIO(t *testing.T) {
	i := New(Config{Seed: 1})
	a, b := pipe(i)
	defer a.Close()
	defer b.Close()

	i.Partition(true)
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Errorf("write during partition: err = %v, want ErrPartitioned", err)
	}
	dial := i.Dialer(func(addr string) (net.Conn, error) {
		t.Fatal("inner dial reached during partition")
		return nil, nil
	})
	if _, err := dial("example:1"); !errors.Is(err, ErrPartitioned) {
		t.Errorf("dial during partition: err = %v, want ErrPartitioned", err)
	}

	i.Partition(false)
	dialed := false
	dial = i.Dialer(func(addr string) (net.Conn, error) {
		dialed = true
		c, _ := net.Pipe()
		return c, nil
	})
	if _, err := dial("example:1"); err != nil || !dialed {
		t.Errorf("dial after heal: err = %v, dialed = %v", err, dialed)
	}
	if i.Stats().Partitioned < 2 {
		t.Errorf("partition refusals = %d, want >= 2", i.Stats().Partitioned)
	}
}

// TestStallRespectsWriteDeadline: a stalled write against a deadline-armed
// conn fails with a timeout instead of blocking for the stall duration's
// underlying write.
func TestStallRespectsWriteDeadline(t *testing.T) {
	i := New(Config{Seed: 1, StallProb: 1, StallFor: 50 * time.Millisecond})
	a, b := pipe(i)
	defer a.Close()
	defer b.Close()

	// Nobody reads b, so the underlying pipe write can only end via the
	// deadline, which the stall has already burned past.
	a.SetWriteDeadline(time.Now().Add(10 * time.Millisecond))
	start := time.Now()
	_, err := a.Write([]byte("stalled"))
	if err == nil {
		t.Fatal("stalled write succeeded against an unread pipe")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("err = %v, want a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("stalled write took %v, deadline did not bound it", elapsed)
	}
	if i.Stats().Stalls == 0 {
		t.Error("stall not counted")
	}
}

// TestPartialWriteTruncates: a partial fault delivers a strict prefix and
// reports an error so framing layers see a broken link, not silence.
func TestPartialWriteTruncates(t *testing.T) {
	i := New(Config{Seed: 1, PartialProb: 1})
	a, b := pipe(i)
	defer a.Close()
	defer b.Close()

	payload := []byte("0123456789abcdef")
	errCh := make(chan error, 1)
	var wrote int
	go func() {
		n, err := a.Write(payload)
		wrote = n
		errCh <- err
	}()
	got := make([]byte, len(payload)/2)
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Error("partial write reported success")
	}
	if wrote >= len(payload) {
		t.Errorf("partial write reported %d bytes, want a strict prefix", wrote)
	}
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Error("prefix delivered by partial write is not the payload prefix")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42, latency=2ms, stall=0.01, stallfor=100ms, partial=0.005, reset=0.005, corrupt=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.LatencyMax != 2*time.Millisecond || cfg.StallProb != 0.01 ||
		cfg.StallFor != 100*time.Millisecond || cfg.PartialProb != 0.005 ||
		cfg.ResetProb != 0.005 || cfg.CorruptProb != 0.01 {
		t.Errorf("cfg = %+v", cfg)
	}
	if _, err := ParseSpec("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseSpec("seed"); err == nil {
		t.Error("missing value accepted")
	}
	if cfg, err := ParseSpec(""); err != nil || cfg.Seed != 0 {
		t.Errorf("empty spec: cfg = %+v, err = %v", cfg, err)
	}
}
