// Package faultinject wraps net.Conn and net.Listener values with a
// deterministic, seeded fault injector: injected latency, write stalls,
// partial writes, mid-frame connection resets, byte corruption, and whole
// network partitions. It exists so the federation layer's failure handling
// (deadlines, heartbeats, circuit breakers, reconnect backoff) can be
// exercised by tests and soak runs against realistic network messiness
// without any external tooling.
//
// All randomness flows through one seeded PRNG, so a given seed replays
// the same fault sequence for the same sequence of I/O operations. Faults
// are injected on the wrapped side only; deadlines set by the application
// pass through to the underlying connection, which is what turns an
// injected stall into a visible timeout instead of a wedged goroutine.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPartitioned is returned by dials and I/O on injected conns while the
// injector's partition is engaged.
var ErrPartitioned = errors.New("faultinject: network partitioned")

// Config selects which faults to inject and how often. Probabilities are
// per I/O operation in [0, 1]; zero values disable a fault class.
type Config struct {
	// Seed makes the fault sequence reproducible. Two injectors with the
	// same seed and the same operation sequence inject the same faults.
	Seed int64
	// LatencyMin/LatencyMax bound a uniform per-operation delay injected
	// before reads and writes (both zero disables latency injection).
	LatencyMin time.Duration
	LatencyMax time.Duration
	// StallProb is the chance a write stalls for StallFor before being
	// attempted — long enough stalls trip the writer's deadline.
	StallProb float64
	StallFor  time.Duration
	// PartialProb is the chance a write delivers only a prefix of its
	// payload and then fails, simulating a connection dying mid-frame.
	PartialProb float64
	// ResetProb is the chance an operation closes the underlying
	// connection and fails, simulating a peer reset mid-stream.
	ResetProb float64
	// CorruptProb is the chance one byte of a read or written payload is
	// flipped, simulating wire corruption. Frame decoding downstream is
	// expected to reject the damage and drop the link.
	CorruptProb float64
}

// Stats counts injected faults by class; all values are cumulative.
type Stats struct {
	Latencies   uint64 // operations delayed
	Stalls      uint64 // writes stalled for StallFor
	Partials    uint64 // writes truncated mid-payload
	Resets      uint64 // connections reset mid-operation
	Corruptions uint64 // payload bytes flipped
	Partitioned uint64 // operations refused by an engaged partition
}

// Injector injects the configured faults into every connection it wraps.
// It is safe for concurrent use; the partition switch may be toggled while
// traffic is flowing.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	partitioned atomic.Bool

	latencies   atomic.Uint64
	stalls      atomic.Uint64
	partials    atomic.Uint64
	resets      atomic.Uint64
	corruptions atomic.Uint64
	refusals    atomic.Uint64
}

// New builds an injector from cfg. The zero Config injects nothing (but
// the partition switch still works), which makes an always-present
// injector cheap to wire in.
func New(cfg Config) *Injector {
	return &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(cfg.Seed)^0x9e3779b97f4a7c15)),
	}
}

// Partition engages (true) or heals (false) a full network partition:
// while engaged, every dial and every operation on a wrapped connection
// fails with ErrPartitioned. Healing lets subsequent dials through; the
// application's reconnect machinery is responsible for recovery.
func (i *Injector) Partition(on bool) { i.partitioned.Store(on) }

// Partitioned reports whether the partition is engaged.
func (i *Injector) Partitioned() bool { return i.partitioned.Load() }

// Stats returns a snapshot of the injected-fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		Latencies:   i.latencies.Load(),
		Stalls:      i.stalls.Load(),
		Partials:    i.partials.Load(),
		Resets:      i.resets.Load(),
		Corruptions: i.corruptions.Load(),
		Partitioned: i.refusals.Load(),
	}
}

// roll draws from the shared PRNG; a single lock keeps the sequence
// deterministic for a given seed and operation order.
func (i *Injector) roll() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Float64()
}

func (i *Injector) latency() time.Duration {
	if i.cfg.LatencyMax <= 0 {
		return 0
	}
	span := i.cfg.LatencyMax - i.cfg.LatencyMin
	i.mu.Lock()
	defer i.mu.Unlock()
	if span <= 0 {
		return i.cfg.LatencyMin
	}
	return i.cfg.LatencyMin + time.Duration(i.rng.Int64N(int64(span)))
}

// pick returns a random index in [0, n); used to choose the corrupted byte.
func (i *Injector) pick(n int) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return int(i.rng.Int64N(int64(n)))
}

// Wrap returns c with the injector's faults applied to its reads and
// writes. Deadlines and addresses pass through to c.
func (i *Injector) Wrap(c net.Conn) net.Conn { return &conn{Conn: c, inj: i} }

// Dialer wraps a dial function: dials fail while partitioned, and
// successful connections are fault-wrapped.
func (i *Injector) Dialer(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		if i.partitioned.Load() {
			i.refusals.Add(1)
			return nil, fmt.Errorf("dial %s: %w", addr, ErrPartitioned)
		}
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return i.Wrap(c), nil
	}
}

// Listener wraps ln so every accepted connection is fault-wrapped.
func (i *Injector) Listener(ln net.Listener) net.Listener { return &listener{Listener: ln, inj: i} }

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Wrap(c), nil
}

// conn applies the injector's faults around an underlying connection.
type conn struct {
	net.Conn
	inj *Injector
}

func (c *conn) Read(p []byte) (int, error) {
	i := c.inj
	if i.partitioned.Load() {
		i.refusals.Add(1)
		c.Conn.Close()
		return 0, ErrPartitioned
	}
	if d := i.latency(); d > 0 {
		i.latencies.Add(1)
		time.Sleep(d)
	}
	if i.cfg.ResetProb > 0 && i.roll() < i.cfg.ResetProb {
		i.resets.Add(1)
		c.Conn.Close()
		return 0, errors.New("faultinject: connection reset")
	}
	n, err := c.Conn.Read(p)
	if n > 0 && i.cfg.CorruptProb > 0 && i.roll() < i.cfg.CorruptProb {
		i.corruptions.Add(1)
		p[i.pick(n)] ^= 0xff
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	i := c.inj
	if i.partitioned.Load() {
		i.refusals.Add(1)
		c.Conn.Close()
		return 0, ErrPartitioned
	}
	if d := i.latency(); d > 0 {
		i.latencies.Add(1)
		time.Sleep(d)
	}
	if i.cfg.StallProb > 0 && i.roll() < i.cfg.StallProb {
		// The stall happens before the underlying write, so a write
		// deadline set by the caller fires on the attempt that follows.
		i.stalls.Add(1)
		time.Sleep(i.cfg.StallFor)
	}
	if i.cfg.ResetProb > 0 && i.roll() < i.cfg.ResetProb {
		i.resets.Add(1)
		c.Conn.Close()
		return 0, errors.New("faultinject: connection reset")
	}
	if len(p) > 1 && i.cfg.PartialProb > 0 && i.roll() < i.cfg.PartialProb {
		i.partials.Add(1)
		n, err := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		if err != nil {
			return n, err
		}
		return n, errors.New("faultinject: partial write")
	}
	if i.cfg.CorruptProb > 0 && i.roll() < i.cfg.CorruptProb {
		i.corruptions.Add(1)
		cp := make([]byte, len(p))
		copy(cp, p)
		if len(cp) > 0 {
			cp[i.pick(len(cp))] ^= 0xff
		}
		return c.Conn.Write(cp)
	}
	return c.Conn.Write(p)
}

// ParseSpec parses a comma-separated k=v fault specification, the format
// of thematicd's -chaos flag, e.g.
//
//	seed=42,latency=2ms,stall=0.01,stallfor=250ms,partial=0.005,reset=0.005,corrupt=0.01
//
// Keys: seed (int), latency (max duration; latencymin optionally bounds it
// below), stall/partial/reset/corrupt (probabilities), stallfor (duration).
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	cfg.StallFor = 250 * time.Millisecond
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: bad spec entry %q (want key=value)", kv)
		}
		var err error
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		case "latency":
			cfg.LatencyMax, err = time.ParseDuration(strings.TrimSpace(v))
		case "latencymin":
			cfg.LatencyMin, err = time.ParseDuration(strings.TrimSpace(v))
		case "stall":
			cfg.StallProb, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "stallfor":
			cfg.StallFor, err = time.ParseDuration(strings.TrimSpace(v))
		case "partial":
			cfg.PartialProb, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "reset":
			cfg.ResetProb, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		case "corrupt":
			cfg.CorruptProb, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
		default:
			return cfg, fmt.Errorf("faultinject: unknown spec key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faultinject: spec %q: %w", kv, err)
		}
	}
	return cfg, nil
}
