package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{give: "Energy", want: "energy"},
		{give: "  PARKING.", want: "parking"},
		{give: "co2,", want: "co2"},
		{give: "---", want: ""},
		{give: "", want: ""},
		{give: "Room-112", want: "room-112"}, // interior punctuation kept by Normalize
	}
	for _, tt := range tests {
		if got := Normalize(tt.give); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		give string
		want []string
	}{
		{
			name: "multi word term",
			give: "increased energy consumption event",
			want: []string{"increased", "energy", "consumption", "event"},
		},
		{
			name: "stop words removed",
			give: "the energy of the building",
			want: []string{"energy", "building"},
		},
		{
			name: "punctuation splits",
			give: "energy_consumption-event",
			want: []string{"energy", "consumption", "event"},
		},
		{
			name: "mixed case and digits",
			give: "Room 112 NO2 sensor",
			want: []string{"room", "112", "no2", "sensor"},
		},
		{
			name: "empty",
			give: "",
			want: nil,
		},
		{
			name: "only stop words",
			give: "the of and",
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Tokenize(tt.give); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestTokenizeKeepStops(t *testing.T) {
	got := TokenizeKeepStops("the Energy OF Room 112")
	want := []string{"the", "energy", "of", "room", "112"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokenizeKeepStops = %v, want %v", got, want)
	}
}

func TestCanonical(t *testing.T) {
	tests := []struct {
		a, b string
		same bool
	}{
		{a: "Room 112", b: "room  112", same: true},
		{a: "energy consumption", b: "Energy_Consumption", same: true},
		{a: "energy consumption", b: "energy usage", same: false},
		{a: "room 112", b: "room 113", same: false},
	}
	for _, tt := range tests {
		if got := Canonical(tt.a) == Canonical(tt.b); got != tt.same {
			t.Errorf("Canonical(%q)==Canonical(%q) = %v, want %v", tt.a, tt.b, got, tt.same)
		}
	}
}

func TestTokenizeNeverReturnsStopWordsOrEmpty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" || IsStopWord(tok) || tok != Normalize(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	f := func(s string) bool {
		c := Canonical(s)
		return Canonical(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("the") {
		t.Error("IsStopWord(the) = false")
	}
	if IsStopWord("energy") {
		t.Error("IsStopWord(energy) = true")
	}
}
