// Package text provides tokenization and term normalization shared by the
// corpus generator, the inverted index, and the event model.
//
// The paper (§4.1) tokenizes documents into terms and removes stop words
// before indexing. Events and subscriptions use single-word or multi-word
// terms (§3.3); multi-word terms are normalized to an ordered bag of tokens
// so that "increased energy consumption event" and "energy consumption"
// share the tokens "energy" and "consumption".
package text

import (
	"strings"
	"unicode"
)

// stopWords is a compact English stop-word list. It intentionally covers the
// closed-class words that would otherwise dominate document frequency; the
// evaluation vocabulary (sensor capabilities, thesaurus concepts) is open
// class and unaffected.
var stopWords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"but": {}, "by": {}, "for": {}, "from": {}, "has": {}, "have": {},
	"he": {}, "her": {}, "his": {}, "if": {}, "in": {}, "into": {}, "is": {},
	"it": {}, "its": {}, "not": {}, "of": {}, "on": {}, "or": {}, "she": {},
	"such": {}, "that": {}, "the": {}, "their": {}, "then": {}, "there": {},
	"these": {}, "they": {}, "this": {}, "to": {}, "was": {}, "were": {},
	"which": {}, "while": {}, "will": {}, "with": {}, "we": {}, "you": {},
	"i": {}, "our": {}, "us": {}, "them": {}, "than": {}, "so": {}, "also": {},
	"can": {}, "may": {}, "more": {}, "most": {}, "other": {}, "some": {},
	"any": {}, "each": {}, "both": {}, "over": {}, "under": {}, "between": {},
	"about": {}, "after": {}, "before": {}, "during": {}, "through": {},
	"when": {}, "where": {}, "how": {}, "all": {}, "no": {}, "nor": {},
	"only": {}, "own": {}, "same": {}, "too": {}, "very": {}, "just": {},
	"do": {}, "does": {}, "did": {}, "been": {}, "being": {}, "had": {},
	"having": {}, "would": {}, "should": {}, "could": {}, "here": {},
	"up": {}, "down": {}, "out": {}, "off": {}, "again": {}, "once": {},
}

// IsStopWord reports whether the normalized token is an English stop word.
func IsStopWord(tok string) bool {
	_, ok := stopWords[tok]
	return ok
}

// Normalize lower-cases a raw token and strips leading/trailing
// non-alphanumeric runes. It returns "" if nothing survives.
func Normalize(tok string) string {
	tok = strings.ToLower(tok)
	tok = strings.TrimFunc(tok, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	return tok
}

// Tokenize splits s into normalized, stop-word-filtered tokens.
// Splitting happens on any rune that is neither a letter nor a digit, so
// "energy_consumption-event" yields {"energy", "consumption", "event"}.
func Tokenize(s string) []string {
	var toks []string
	appendTok := func(raw string) {
		t := Normalize(raw)
		if t == "" || IsStopWord(t) {
			return
		}
		toks = append(toks, t)
	}
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			appendTok(s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		appendTok(s[start:])
	}
	return toks
}

// TokenizeKeepStops is Tokenize without stop-word removal. The event model
// uses it for exact (non-approximate) comparison, where "room 112" must keep
// every token.
func TokenizeKeepStops(s string) []string {
	var toks []string
	for _, f := range strings.FieldsFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	}) {
		if t := Normalize(f); t != "" {
			toks = append(toks, t)
		}
	}
	return toks
}

// Canonical returns the canonical single-string form of a multi-word term:
// normalized tokens (stop words kept) joined by single spaces. Two terms are
// exactly equal in the event model iff their Canonical forms are equal.
func Canonical(s string) string {
	return strings.Join(TokenizeKeepStops(s), " ")
}
