package figures

import (
	"fmt"
	"io"
	"sort"

	"thematicep/internal/eval"
)

// SVG rendering produces self-contained figure files for the grid
// experiments — the publishable counterparts of the terminal heatmaps.

const (
	svgCell    = 22
	svgPadLeft = 64
	svgPadTop  = 56
	svgPadBot  = 72
	svgPadRt   = 24
)

// HeatmapSVG renders the grid as an SVG heatmap: x = event theme size,
// y = subscription theme size (largest at the top, as in the paper's
// figures). Cells at or below the baseline are hatched with a darker
// border. value selects the metric.
func HeatmapSVG(w io.Writer, title string, cells []eval.Cell, value func(eval.Cell) float64, baseline float64) error {
	if len(cells) == 0 {
		_, err := fmt.Fprint(w, emptySVG(title))
		return err
	}
	xs := sizes(cells, func(c eval.Cell) int { return c.EventSize })
	ys := sizes(cells, func(c eval.Cell) int { return c.SubSize })
	byPos := make(map[[2]int]eval.Cell, len(cells))
	lo, hi := value(cells[0]), value(cells[0])
	for _, c := range cells {
		byPos[[2]int{c.EventSize, c.SubSize}] = c
		v := value(c)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}

	width := svgPadLeft + len(xs)*svgCell + svgPadRt
	height := svgPadTop + len(ys)*svgCell + svgPadBot
	var b svgBuilder
	b.open(width, height)
	b.text(width/2, 24, "middle", 14, title)
	b.text(width/2, height-12, "middle", 11, "event theme size")
	b.vtext(16, svgPadTop+len(ys)*svgCell/2, 11, "subscription theme size")

	for yi, y := range ys {
		row := len(ys) - 1 - yi // largest size at the top
		py := svgPadTop + row*svgCell
		b.text(svgPadLeft-8, py+svgCell/2+4, "end", 9, fmt.Sprintf("%d", y))
		for xi, x := range xs {
			px := svgPadLeft + xi*svgCell
			c, ok := byPos[[2]int{x, y}]
			if !ok {
				continue
			}
			v := value(c)
			fill := heatColor(v, lo, hi)
			stroke := "#ffffff"
			strokeWidth := 1.0
			if baseline > 0 && v <= baseline {
				stroke = "#333333"
				strokeWidth = 1.5
			}
			b.rect(px, py, svgCell-1, svgCell-1, fill, stroke, strokeWidth,
				fmt.Sprintf("e=%d s=%d: %.3f", x, y, v))
		}
	}
	for xi, x := range xs {
		px := svgPadLeft + xi*svgCell
		b.text(px+svgCell/2, svgPadTop+len(ys)*svgCell+14, "middle", 9, fmt.Sprintf("%d", x))
	}
	// Legend: min/max swatches plus the baseline convention.
	ly := height - 40
	b.rect(svgPadLeft, ly, 14, 14, heatColor(lo, lo, hi), "#ffffff", 1, "")
	b.text(svgPadLeft+20, ly+11, "start", 10, fmt.Sprintf("%.3g", lo))
	b.rect(svgPadLeft+90, ly, 14, 14, heatColor(hi, lo, hi), "#ffffff", 1, "")
	b.text(svgPadLeft+110, ly+11, "start", 10, fmt.Sprintf("%.3g", hi))
	if baseline > 0 {
		b.rect(svgPadLeft+180, ly, 14, 14, "#dddddd", "#333333", 1.5, "")
		b.text(svgPadLeft+200, ly+11, "start", 10, fmt.Sprintf("at or below baseline %.3g", baseline))
	}
	b.close()
	_, err := io.WriteString(w, b.String())
	return err
}

// ScatterSVG renders (x, y) points — the sample-error figures.
func ScatterSVG(w io.Writer, title, xLabel, yLabel string, xs, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		_, err := fmt.Fprint(w, emptySVG(title))
		return err
	}
	const plotW, plotH = 420, 260
	width := svgPadLeft + plotW + svgPadRt
	height := svgPadTop + plotH + svgPadBot

	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)

	var b svgBuilder
	b.open(width, height)
	b.text(width/2, 24, "middle", 14, title)
	b.text(width/2, height-12, "middle", 11, xLabel)
	b.vtext(16, svgPadTop+plotH/2, 11, yLabel)

	// Axes.
	b.line(svgPadLeft, svgPadTop, svgPadLeft, svgPadTop+plotH)
	b.line(svgPadLeft, svgPadTop+plotH, svgPadLeft+plotW, svgPadTop+plotH)
	b.text(svgPadLeft-6, svgPadTop+plotH+4, "end", 9, fmt.Sprintf("%.3g", minY))
	b.text(svgPadLeft-6, svgPadTop+8, "end", 9, fmt.Sprintf("%.3g", maxY))
	b.text(svgPadLeft, svgPadTop+plotH+16, "middle", 9, fmt.Sprintf("%.3g", minX))
	b.text(svgPadLeft+plotW, svgPadTop+plotH+16, "middle", 9, fmt.Sprintf("%.3g", maxX))

	for i := range xs {
		px := svgPadLeft + scaleTo(xs[i], minX, maxX, plotW)
		py := svgPadTop + plotH - scaleTo(ys[i], minY, maxY, plotH)
		b.circle(px, py, 3, "#2a6fdb99")
	}
	b.close()
	_, err := io.WriteString(w, b.String())
	return err
}

// heatColor maps a value to a blue→red gradient, as in the paper's figures
// ("colors range from blue (low F1Score) to red (high F1Score)").
func heatColor(v, lo, hi float64) string {
	t := 0.5
	if hi > lo {
		t = (v - lo) / (hi - lo)
	}
	// Interpolate blue (42, 111, 219) -> red (219, 56, 42).
	r := int(42 + t*(219-42))
	g := int(111 + t*(56-111))
	b := int(219 + t*(42-219))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// svgBuilder accumulates a minimal SVG document.
type svgBuilder struct {
	sb []byte
}

func (b *svgBuilder) appendf(format string, args ...any) {
	b.sb = append(b.sb, fmt.Sprintf(format, args...)...)
}

func (b *svgBuilder) open(w, h int) {
	b.appendf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", w, h)
	b.appendf(`<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", w, h)
}

func (b *svgBuilder) close() { b.appendf("</svg>\n") }

func (b *svgBuilder) String() string { return string(b.sb) }

func (b *svgBuilder) rect(x, y, w, h int, fill, stroke string, strokeWidth float64, tooltip string) {
	b.appendf(`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="%s" stroke-width="%.1f">`,
		x, y, w, h, fill, stroke, strokeWidth)
	if tooltip != "" {
		b.appendf("<title>%s</title>", xmlEscape(tooltip))
	}
	b.appendf("</rect>\n")
}

func (b *svgBuilder) text(x, y int, anchor string, size int, s string) {
	b.appendf(`<text x="%d" y="%d" text-anchor="%s" font-size="%d">%s</text>`+"\n",
		x, y, anchor, size, xmlEscape(s))
}

func (b *svgBuilder) vtext(x, y, size int, s string) {
	b.appendf(`<text x="%d" y="%d" text-anchor="middle" font-size="%d" transform="rotate(-90 %d %d)">%s</text>`+"\n",
		x, y, size, x, y, xmlEscape(s))
}

func (b *svgBuilder) line(x1, y1, x2, y2 int) {
	b.appendf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444444"/>`+"\n", x1, y1, x2, y2)
}

func (b *svgBuilder) circle(cx, cy, r int, fill string) {
	b.appendf(`<circle cx="%d" cy="%d" r="%d" fill="%s"/>`+"\n", cx, cy, r, fill)
}

func emptySVG(title string) string {
	var b svgBuilder
	b.open(300, 60)
	b.text(150, 35, "middle", 12, title+": no data")
	b.close()
	return b.String()
}

func xmlEscape(s string) string {
	var out []byte
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, string(r)...)
		}
	}
	return string(out)
}

// sortedCopy is a small helper for tests.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
