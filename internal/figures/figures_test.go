package figures

import (
	"strings"
	"testing"

	"thematicep/internal/eval"
)

func sampleCells() []eval.Cell {
	return []eval.Cell{
		{EventSize: 1, SubSize: 1, MeanF1: 0.1, MeanThroughput: 100, StdF1: 0.02, StdThroughput: 5, Samples: 2},
		{EventSize: 1, SubSize: 5, MeanF1: 0.7, MeanThroughput: 300, StdF1: 0.05, StdThroughput: 12, Samples: 2},
		{EventSize: 5, SubSize: 1, MeanF1: 0.2, MeanThroughput: 250, StdF1: 0.01, StdThroughput: 8, Samples: 2},
		{EventSize: 5, SubSize: 5, MeanF1: 0.8, MeanThroughput: 200, StdF1: 0.03, StdThroughput: 6, Samples: 2},
	}
}

func TestHeatmapRendering(t *testing.T) {
	var sb strings.Builder
	Heatmap(&sb, "Fig 7", sampleCells(), func(c eval.Cell) float64 { return c.MeanF1 }, 0.6)
	out := sb.String()
	for _, want := range []string{"Fig 7", "s=  5", "s=  1", "e =", "above baseline: 2/4"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap output missing %q:\n%s", want, out)
		}
	}
	// Y axis printed top-down: s=5 row before s=1 row.
	if strings.Index(out, "s=  5") > strings.Index(out, "s=  1") {
		t.Error("rows not printed top-down")
	}
}

func TestHeatmapEmpty(t *testing.T) {
	var sb strings.Builder
	Heatmap(&sb, "empty", nil, func(c eval.Cell) float64 { return 0 }, 0)
	if !strings.Contains(sb.String(), "no cells") {
		t.Errorf("output = %q", sb.String())
	}
}

func TestHeatmapUniformValues(t *testing.T) {
	cells := []eval.Cell{
		{EventSize: 1, SubSize: 1, MeanF1: 0.5},
		{EventSize: 2, SubSize: 1, MeanF1: 0.5},
	}
	var sb strings.Builder
	Heatmap(&sb, "uniform", cells, func(c eval.Cell) float64 { return c.MeanF1 }, 0)
	if sb.Len() == 0 {
		t.Error("no output for uniform values")
	}
}

func TestScatterRendering(t *testing.T) {
	var sb strings.Builder
	xs := []float64{0.1, 0.2, 0.5, 0.8, 0.8}
	ys := []float64{0.01, 0.25, 0.10, 0.07, 0.07}
	Scatter(&sb, "Fig 8", "F1", "error", xs, ys)
	out := sb.String()
	for _, want := range []string{"Fig 8", "F1:", "error:"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter output missing %q:\n%s", want, out)
		}
	}
	// The duplicate point must upgrade density to 'o'.
	if !strings.Contains(out, "o") {
		t.Error("density upgrade marker missing")
	}
}

func TestScatterEmptyAndMismatch(t *testing.T) {
	var sb strings.Builder
	Scatter(&sb, "x", "a", "b", nil, nil)
	if !strings.Contains(sb.String(), "no points") {
		t.Error("empty scatter not handled")
	}
	sb.Reset()
	Scatter(&sb, "x", "a", "b", []float64{1}, []float64{1, 2})
	if !strings.Contains(sb.String(), "no points") {
		t.Error("mismatched lengths not handled")
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, sampleCells()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want header + 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "event_theme_size,sub_theme_size") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,1,0.100000") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestBucketRuneBounds(t *testing.T) {
	if r := bucketRune(0, 0, 1); r != heatRunes[0] {
		t.Errorf("lo rune = %q", r)
	}
	if r := bucketRune(1, 0, 1); r != heatRunes[len(heatRunes)-1] {
		t.Errorf("hi rune = %q", r)
	}
	if r := bucketRune(0.5, 0.5, 0.5); r != heatRunes[len(heatRunes)/2] {
		t.Errorf("degenerate rune = %q", r)
	}
}
