package figures

import (
	"strings"
	"testing"

	"thematicep/internal/eval"
)

func TestHeatmapSVG(t *testing.T) {
	var sb strings.Builder
	if err := HeatmapSVG(&sb, "Fig 7", sampleCells(), func(c eval.Cell) float64 { return c.MeanF1 }, 0.6); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "Fig 7", "event theme size", "subscription theme size",
		"<rect", "<title>e=1 s=1: 0.100</title>", "at or below baseline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 4 cells + background + 3 legend swatches = 8 rects.
	if got := strings.Count(out, "<rect"); got != 8 {
		t.Errorf("rect count = %d, want 8", got)
	}
}

func TestHeatmapSVGEmpty(t *testing.T) {
	var sb strings.Builder
	if err := HeatmapSVG(&sb, "empty", nil, func(eval.Cell) float64 { return 0 }, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty SVG lacks placeholder")
	}
}

func TestScatterSVG(t *testing.T) {
	var sb strings.Builder
	xs := []float64{0.1, 0.5, 0.9}
	ys := []float64{0.01, 0.05, 0.02}
	if err := ScatterSVG(&sb, "Fig 8", "F1", "std", xs, ys); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "<circle"); got != 3 {
		t.Errorf("circle count = %d, want 3", got)
	}
	for _, want := range []string{"F1", "std", "<line"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestScatterSVGEmpty(t *testing.T) {
	var sb strings.Builder
	if err := ScatterSVG(&sb, "x", "a", "b", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty scatter lacks placeholder")
	}
}

func TestHeatColorEndpoints(t *testing.T) {
	if got := heatColor(0, 0, 1); got != "#2a6fdb" {
		t.Errorf("low color = %s", got)
	}
	if got := heatColor(1, 0, 1); got != "#db382a" {
		t.Errorf("high color = %s", got)
	}
	if got := heatColor(0.5, 0.5, 0.5); got == "" {
		t.Error("degenerate range produced empty color")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("xmlEscape = %q", got)
	}
}

func TestSortedCopy(t *testing.T) {
	in := []float64{3, 1, 2}
	out := sortedCopy(in)
	if out[0] != 1 || out[2] != 3 || in[0] != 3 {
		t.Errorf("sortedCopy mutated input or failed: %v %v", in, out)
	}
}
