// Package figures renders the paper's evaluation artifacts as ASCII
// heatmaps and scatter plots (Figures 7-10) and emits machine-readable CSV.
package figures

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"thematicep/internal/eval"
)

// heatRunes index increasing value buckets.
var heatRunes = []rune(" .:-=+*#%@")

// Heatmap renders a grid of cells as an ASCII heatmap with the event-theme
// size on the X axis and the subscription-theme size on the Y axis (rows
// printed top-down from the largest size, matching the paper's layout).
// value selects the cell metric; baseline, when > 0, marks cells at or
// below it with lowercase 'o' borders in the legend column counts.
func Heatmap(w io.Writer, title string, cells []eval.Cell, value func(eval.Cell) float64, baseline float64) {
	if len(cells) == 0 {
		fmt.Fprintf(w, "%s: (no cells)\n", title)
		return
	}
	xs := sizes(cells, func(c eval.Cell) int { return c.EventSize })
	ys := sizes(cells, func(c eval.Cell) int { return c.SubSize })
	byPos := make(map[[2]int]eval.Cell, len(cells))
	lo, hi := value(cells[0]), value(cells[0])
	for _, c := range cells {
		byPos[[2]int{c.EventSize, c.SubSize}] = c
		v := value(c)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  scale: %.3g (%q) .. %.3g (%q)", lo, heatRunes[0], hi, heatRunes[len(heatRunes)-1])
	if baseline > 0 {
		fmt.Fprintf(w, "; cells above baseline %.3g are UPPERCASE-marked with their rune, below shown in (.)", baseline)
	}
	fmt.Fprintln(w)

	above, total := 0, 0
	for i := len(ys) - 1; i >= 0; i-- {
		y := ys[i]
		fmt.Fprintf(w, "  s=%3d |", y)
		for _, x := range xs {
			c, ok := byPos[[2]int{x, y}]
			if !ok {
				fmt.Fprint(w, "  ?")
				continue
			}
			v := value(c)
			total++
			mark := ' '
			if baseline > 0 {
				if v > baseline {
					above++
					mark = ' '
				} else {
					mark = '('
				}
			}
			fmt.Fprintf(w, " %c%c", mark, bucketRune(v, lo, hi))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "        +")
	fmt.Fprintln(w, strings.Repeat("---", len(xs)))
	fmt.Fprint(w, "     e = ")
	for _, x := range xs {
		fmt.Fprintf(w, "%3d", x)
	}
	fmt.Fprintln(w)
	if baseline > 0 && total > 0 {
		fmt.Fprintf(w, "  cells above baseline: %d/%d (%.0f%%)\n", above, total, 100*float64(above)/float64(total))
	}
}

func bucketRune(v, lo, hi float64) rune {
	if hi <= lo {
		return heatRunes[len(heatRunes)/2]
	}
	idx := int((v - lo) / (hi - lo) * float64(len(heatRunes)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(heatRunes) {
		idx = len(heatRunes) - 1
	}
	return heatRunes[idx]
}

func sizes(cells []eval.Cell, get func(eval.Cell) int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, c := range cells {
		if !seen[get(c)] {
			seen[get(c)] = true
			out = append(out, get(c))
		}
	}
	sort.Ints(out)
	return out
}

// Scatter renders an ASCII scatter plot of (x, y) points — the sample-error
// figures 8 and 10.
func Scatter(w io.Writer, title, xLabel, yLabel string, xs, ys []float64) {
	const width, height = 60, 16
	if len(xs) == 0 || len(xs) != len(ys) {
		fmt.Fprintf(w, "%s: (no points)\n", title)
		return
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for i := range xs {
		col := scaleTo(xs[i], minX, maxX, width-1)
		row := height - 1 - scaleTo(ys[i], minY, maxY, height-1)
		switch grid[row][col] {
		case ' ':
			grid[row][col] = '·'
		case '·':
			grid[row][col] = 'o'
		default:
			grid[row][col] = '@'
		}
	}
	fmt.Fprintf(w, "%s  (density: · o @)\n", title)
	fmt.Fprintf(w, "  %s: %.3g .. %.3g (vertical)\n", yLabel, minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "  %s: %.3g .. %.3g (horizontal)\n", xLabel, minX, maxX)
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func scaleTo(v, lo, hi float64, max int) int {
	if hi <= lo {
		return max / 2
	}
	idx := int((v - lo) / (hi - lo) * float64(max))
	if idx < 0 {
		idx = 0
	}
	if idx > max {
		idx = max
	}
	return idx
}

// CSV writes the grid cells as CSV with a header, for plotting outside the
// terminal.
func CSV(w io.Writer, cells []eval.Cell) error {
	if _, err := fmt.Fprintln(w, "event_theme_size,sub_theme_size,mean_f1,std_f1,mean_throughput,std_throughput,samples"); err != nil {
		return err
	}
	for _, c := range cells {
		if _, err := fmt.Fprintf(w, "%d,%d,%.6f,%.6f,%.3f,%.3f,%d\n",
			c.EventSize, c.SubSize, c.MeanF1, c.StdF1, c.MeanThroughput, c.StdThroughput, c.Samples); err != nil {
			return err
		}
	}
	return nil
}
