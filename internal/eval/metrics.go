// Package eval implements the paper's evaluation framework (§5.1-5.2):
// effectiveness metrics (Precision, Recall, F1 at the 11 standard recall
// points, maximal F1), throughput measurement, and the grid of
// sub-experiments over theme-size combinations that generates Figures 7-10.
package eval

import (
	"math"
	"sort"
)

// RecallPoints are the 11 standard recall levels of §5.1.
var RecallPoints = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// MaxF1 computes the maximal F1 over the 11 recall points for one
// subscription (§5.1): events are ranked by score (descending; zero-score
// events are not retrieved), precision is interpolated at each recall
// point, and the best F1 across points is returned. relevant(i) reports the
// ground truth for event i; scores[i] is the matcher's score for event i.
func MaxF1(scores []float64, relevant func(i int) bool) float64 {
	totalRelevant := 0
	type ranked struct {
		idx   int
		score float64
	}
	var retrieved []ranked
	for i, s := range scores {
		if relevant(i) {
			totalRelevant++
		}
		if s > 0 {
			retrieved = append(retrieved, ranked{idx: i, score: s})
		}
	}
	if totalRelevant == 0 || len(retrieved) == 0 {
		return 0
	}
	sort.Slice(retrieved, func(a, b int) bool {
		if retrieved[a].score != retrieved[b].score {
			return retrieved[a].score > retrieved[b].score
		}
		return retrieved[a].idx < retrieved[b].idx
	})

	// precisionAt[k] and recallAt[k] after retrieving the top k+1 events.
	tp := 0
	precisionAt := make([]float64, len(retrieved))
	recallAt := make([]float64, len(retrieved))
	for k, r := range retrieved {
		if relevant(r.idx) {
			tp++
		}
		precisionAt[k] = float64(tp) / float64(k+1)
		recallAt[k] = float64(tp) / float64(totalRelevant)
	}

	best := 0.0
	for _, r := range RecallPoints {
		if r == 0 {
			continue // F1 is 0 at recall 0
		}
		// Interpolated precision: the maximum precision at any cutoff whose
		// recall reaches r.
		p := 0.0
		for k := range retrieved {
			if recallAt[k] >= r && precisionAt[k] > p {
				p = precisionAt[k]
			}
		}
		if p == 0 {
			continue
		}
		f1 := 2 * p * r / (p + r)
		if f1 > best {
			best = f1
		}
	}
	return best
}

// PrecisionRecall computes set-based precision and recall for a binary
// matcher's decisions (used by Table 1's exact approaches, where the
// matcher's output is a set rather than a ranking).
func PrecisionRecall(matched, relevant func(i int) bool, n int) (precision, recall float64) {
	tp, fp, fn := 0, 0, 0
	for i := 0; i < n; i++ {
		switch {
		case matched(i) && relevant(i):
			tp++
		case matched(i):
			fp++
		case relevant(i):
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// F1 combines precision and recall (§5.1).
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// MeanStd returns the mean and (population) standard deviation of xs — the
// per-cell sample statistics of Figures 8 and 10.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	std = math.Sqrt(v / float64(len(xs)))
	return mean, std
}
