package eval

import (
	"sync"
	"testing"

	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
	"thematicep/internal/workload"
)

var (
	envOnce  sync.Once
	envSpace *semantics.Space
	envWork  *workload.Workload
)

func testEnv(t testing.TB) (*semantics.Space, *workload.Workload) {
	t.Helper()
	envOnce.Do(func() {
		envSpace = semantics.NewSpace(index.Build(corpus.GenerateDefault()))
		envWork = workload.Generate(workload.Config{
			Seed:            3,
			SeedEvents:      30,
			ExpandedPerSeed: 4,
			Subscriptions:   12,
			MaxPredicates:   3,
		})
	})
	return envSpace, envWork
}

// perfectScorer cheats with the ground truth; Run must then report F1 = 1.
type perfectScorer struct {
	w     *workload.Workload
	index map[*event.Event]int
	subs  map[*event.Subscription]int
}

func newPerfectScorer(w *workload.Workload) *perfectScorer {
	p := &perfectScorer{
		w:     w,
		index: make(map[*event.Event]int, len(w.Events)),
		subs:  make(map[*event.Subscription]int, len(w.ApproxSubs)),
	}
	for i, e := range w.Events {
		p.index[e] = i
	}
	for i, s := range w.ApproxSubs {
		p.subs[s] = i
	}
	return p
}

func (p *perfectScorer) Score(s *event.Subscription, e *event.Event) float64 {
	if p.w.Relevant(p.subs[s], p.index[e]) {
		return 1
	}
	return 0
}

func TestRunPerfectScorer(t *testing.T) {
	_, w := testEnv(t)
	res := Run(newPerfectScorer(w), w)
	if res.F1 != 1 {
		t.Errorf("perfect scorer F1 = %v, want 1", res.F1)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
	if res.Events != len(w.Events) || res.Subscriptions != len(w.ApproxSubs) {
		t.Errorf("sizes wrong: %+v", res)
	}
}

// inverseScorer scores exactly the irrelevant events; F1 must be 0.
type inverseScorer struct{ p *perfectScorer }

func (i inverseScorer) Score(s *event.Subscription, e *event.Event) float64 {
	return 1 - i.p.Score(s, e)
}

func TestRunInverseScorer(t *testing.T) {
	_, w := testEnv(t)
	res := Run(inverseScorer{p: newPerfectScorer(w)}, w)
	// Every subscription still finds its relevant events at the ranking
	// tail... no: irrelevant events score 1, relevant score 0, so relevant
	// events are never retrieved.
	if res.F1 != 0 {
		t.Errorf("inverse scorer F1 = %v, want 0", res.F1)
	}
}

func TestRunMatcherBeatsInverse(t *testing.T) {
	space, w := testEnv(t)
	w.ClearThemes()
	m := matcher.New(space, matcher.WithThematic(false))
	res := Run(m, w)
	if res.F1 <= 0.05 {
		t.Errorf("non-thematic matcher F1 = %v, suspiciously low", res.F1)
	}
	t.Logf("non-thematic F1=%.3f throughput=%.0f ev/s", res.F1, res.Throughput)
}

// TestRunCandidatePruningPreservesF1 verifies the opt-in pruned eval path:
// the index only skips pairs that provably score 0, so F1 is bit-identical
// to the full scan and the pair accounting adds up.
func TestRunCandidatePruningPreservesF1(t *testing.T) {
	space, w := testEnv(t)
	w.ClearThemes()
	m := matcher.New(space)
	full := Run(m, w)
	pruned := Run(m, w, WithCandidatePruning(true))
	if pruned.F1 != full.F1 {
		t.Errorf("pruned F1 = %v, full-scan F1 = %v", pruned.F1, full.F1)
	}
	totalPairs := uint64(len(w.Events) * len(w.ApproxSubs))
	if full.ScoredPairs != totalPairs || full.PrunedPairs != 0 {
		t.Errorf("full scan pairs = %d scored / %d pruned, want %d / 0",
			full.ScoredPairs, full.PrunedPairs, totalPairs)
	}
	if pruned.ScoredPairs+pruned.PrunedPairs != totalPairs {
		t.Errorf("pruned accounting %d+%d != %d",
			pruned.ScoredPairs, pruned.PrunedPairs, totalPairs)
	}
	t.Logf("pruned %d of %d pairs", pruned.PrunedPairs, totalPairs)
}

func TestRunGridShape(t *testing.T) {
	space, w := testEnv(t)
	m := matcher.New(space)
	cells := RunGrid(m, space, w, GridConfig{
		Sizes:   []int{2, 8},
		Samples: 2,
		Seed:    1,
	})
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	wantPairs := [][2]int{{2, 2}, {2, 8}, {8, 2}, {8, 8}}
	for i, c := range cells {
		if c.EventSize != wantPairs[i][0] || c.SubSize != wantPairs[i][1] {
			t.Errorf("cell %d = (%d,%d), want %v", i, c.EventSize, c.SubSize, wantPairs[i])
		}
		if c.Samples != 2 {
			t.Errorf("cell %d samples = %d", i, c.Samples)
		}
		if c.MeanF1 < 0 || c.MeanF1 > 1 {
			t.Errorf("cell %d F1 = %v", i, c.MeanF1)
		}
		if c.MeanThroughput <= 0 {
			t.Errorf("cell %d throughput = %v", i, c.MeanThroughput)
		}
	}
	// Themes must be cleared afterwards.
	for _, e := range w.Events {
		if len(e.Theme) != 0 {
			t.Fatal("grid left themes applied")
		}
	}
}

func TestRunGridDeterministic(t *testing.T) {
	space, w := testEnv(t)
	m := matcher.New(space)
	cfg := GridConfig{Sizes: []int{3}, Samples: 2, Seed: 9}
	a := RunGrid(m, space, w, cfg)
	b := RunGrid(m, space, w, cfg)
	if a[0].MeanF1 != b[0].MeanF1 {
		t.Errorf("grid F1 not deterministic: %v vs %v", a[0].MeanF1, b[0].MeanF1)
	}
}

// TestRunGridParallelMatchesSerial checks the parallel grid runner is a
// pure wall-clock optimization: cell order, sizes, and F1 statistics are
// bit-for-bit those of the serial run (throughput, being a wall-time
// measurement, is exempt). Run with -race: workers share nothing but the
// immutable index.
func TestRunGridParallelMatchesSerial(t *testing.T) {
	space, w := testEnv(t)
	m := matcher.New(space)
	cfg := GridConfig{Sizes: []int{2, 5, 8}, Samples: 2, Seed: 11}
	serial := RunGrid(m, space, w, cfg)

	ix := space.Index()
	cfg.Parallelism = 4
	cfg.NewScorer = func() (Scorer, *semantics.Space) {
		sp := semantics.NewSpace(ix)
		return matcher.New(sp), sp
	}
	par := RunGrid(m, space, w, cfg)

	if len(par) != len(serial) {
		t.Fatalf("parallel cells = %d, serial = %d", len(par), len(serial))
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if p.EventSize != s.EventSize || p.SubSize != s.SubSize || p.Samples != s.Samples {
			t.Errorf("cell %d shape: parallel (%d,%d,%d), serial (%d,%d,%d)",
				i, p.EventSize, p.SubSize, p.Samples, s.EventSize, s.SubSize, s.Samples)
		}
		if p.MeanF1 != s.MeanF1 || p.StdF1 != s.StdF1 {
			t.Errorf("cell %d F1: parallel %v±%v, serial %v±%v",
				i, p.MeanF1, p.StdF1, s.MeanF1, s.StdF1)
		}
	}
	// The parallel path must not leave the shared workload themed.
	for _, e := range w.Events {
		if len(e.Theme) != 0 {
			t.Fatal("parallel grid left themes applied to the shared workload")
		}
	}
}

func TestSummarize(t *testing.T) {
	cells := []Cell{
		{MeanF1: 0.8, MeanThroughput: 400},
		{MeanF1: 0.5, MeanThroughput: 300},
		{MeanF1: 0.3, MeanThroughput: 100},
	}
	baseline := Result{F1: 0.6, Throughput: 200}
	s := Summarize(cells, baseline)
	if !almostEqual(s.MeanF1, (0.8+0.5+0.3)/3) {
		t.Errorf("MeanF1 = %v", s.MeanF1)
	}
	if s.MaxF1 != 0.8 || s.MaxThroughput != 400 {
		t.Errorf("max = %v/%v", s.MaxF1, s.MaxThroughput)
	}
	if !almostEqual(s.FracF1AboveBaseline, 1.0/3.0) {
		t.Errorf("FracF1AboveBaseline = %v", s.FracF1AboveBaseline)
	}
	if !almostEqual(s.FracThroughputAboveBaseline, 2.0/3.0) {
		t.Errorf("FracThroughputAboveBaseline = %v", s.FracThroughputAboveBaseline)
	}
	if got := Summarize(nil, baseline); got.MeanF1 != 0 {
		t.Errorf("empty summarize = %+v", got)
	}
}

func TestDefaultAndPaperGridSizes(t *testing.T) {
	if got := PaperGridSizes(); len(got) != 30 || got[0] != 1 || got[29] != 30 {
		t.Errorf("PaperGridSizes = %v", got)
	}
	def := DefaultGridSizes()
	if len(def) == 0 || def[len(def)-1] != 30 {
		t.Errorf("DefaultGridSizes = %v", def)
	}
}
