package eval

import (
	"fmt"
	"math"
)

// This file adds the "more quantitative aspects of evaluation" the paper
// defers to future work (§7): a paired sign test over per-subscription F1
// scores, so "thematic outperforms non-thematic" is backed by a p-value
// rather than a mean comparison alone.

// SignTestResult summarizes a paired sign test between two matched samples.
type SignTestResult struct {
	// Wins counts pairs where a > b, Losses pairs where a < b; Ties are
	// excluded from the test as usual.
	Wins, Losses, Ties int
	// PValue is the two-sided binomial probability of a split at least
	// this extreme under H0 (no difference).
	PValue float64
}

// String renders the result compactly.
func (r SignTestResult) String() string {
	return fmt.Sprintf("wins=%d losses=%d ties=%d p=%.4f", r.Wins, r.Losses, r.Ties, r.PValue)
}

// Significant reports whether the difference is significant at level alpha.
func (r SignTestResult) Significant(alpha float64) bool {
	return r.Wins+r.Losses > 0 && r.PValue < alpha
}

// SignTest runs a paired two-sided sign test on equal-length samples a and
// b (e.g. per-subscription F1 under two matchers). It panics on length
// mismatch: that is a programming error, not data.
func SignTest(a, b []float64) SignTestResult {
	if len(a) != len(b) {
		panic("eval: SignTest sample length mismatch")
	}
	var r SignTestResult
	for i := range a {
		switch {
		case a[i] > b[i]:
			r.Wins++
		case a[i] < b[i]:
			r.Losses++
		default:
			r.Ties++
		}
	}
	n := r.Wins + r.Losses
	if n == 0 {
		r.PValue = 1
		return r
	}
	k := r.Wins
	if r.Losses < k {
		k = r.Losses
	}
	// Two-sided: 2 * P(X <= min(wins, losses)) under Binomial(n, 0.5),
	// capped at 1.
	p := 0.0
	for i := 0; i <= k; i++ {
		p += binomialPMF(n, i)
	}
	p *= 2
	if p > 1 {
		p = 1
	}
	r.PValue = p
	return r
}

// binomialPMF computes C(n,k) * 0.5^n in log space for numerical safety.
func binomialPMF(n, k int) float64 {
	logC := lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
	return math.Exp(logC + float64(n)*math.Log(0.5))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// PerSubscriptionF1 computes each subscription's maximal F1 for a scores
// matrix (scores[si][ei]) and ground truth, for use with SignTest.
func PerSubscriptionF1(scores [][]float64, relevant func(si, ei int) bool) []float64 {
	out := make([]float64, len(scores))
	for si := range scores {
		si := si
		out[si] = MaxF1(scores[si], func(ei int) bool { return relevant(si, ei) })
	}
	return out
}
