package eval

import (
	"math"
	"testing"
)

func TestSignTestClearWin(t *testing.T) {
	a := []float64{0.9, 0.8, 0.85, 0.7, 0.9, 0.8, 0.75, 0.9, 0.8, 0.85}
	b := []float64{0.5, 0.6, 0.55, 0.6, 0.5, 0.6, 0.65, 0.5, 0.6, 0.55}
	r := SignTest(a, b)
	if r.Wins != 10 || r.Losses != 0 || r.Ties != 0 {
		t.Fatalf("counts = %+v", r)
	}
	// Two-sided p = 2 * 0.5^10 ≈ 0.00195.
	if want := 2 * math.Pow(0.5, 10); math.Abs(r.PValue-want) > 1e-9 {
		t.Errorf("p = %v, want %v", r.PValue, want)
	}
	if !r.Significant(0.05) {
		t.Error("clear win not significant")
	}
}

func TestSignTestNoDifference(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	r := SignTest(a, a)
	if r.Ties != 4 || r.PValue != 1 {
		t.Errorf("result = %+v", r)
	}
	if r.Significant(0.05) {
		t.Error("all-ties significant")
	}
}

func TestSignTestBalanced(t *testing.T) {
	a := []float64{1, 0, 1, 0, 1, 0}
	b := []float64{0, 1, 0, 1, 0, 1}
	r := SignTest(a, b)
	if r.Wins != 3 || r.Losses != 3 {
		t.Fatalf("counts = %+v", r)
	}
	// min(k)=3, p = 2*sum_{i<=3} C(6,i)/64 = 2*(1+6+15+20)/64 = 1.3125 -> capped 1.
	if r.PValue != 1 {
		t.Errorf("p = %v, want 1 (capped)", r.PValue)
	}
}

func TestSignTestKnownBinomial(t *testing.T) {
	// 9 wins, 1 loss: p = 2 * (C(10,0)+C(10,1)) / 2^10 = 2*11/1024.
	a := make([]float64, 10)
	b := make([]float64, 10)
	for i := range a {
		a[i] = 1
	}
	b[0] = 2
	r := SignTest(a, b)
	if r.Wins != 9 || r.Losses != 1 {
		t.Fatalf("counts = %+v", r)
	}
	if want := 2.0 * 11.0 / 1024.0; math.Abs(r.PValue-want) > 1e-9 {
		t.Errorf("p = %v, want %v", r.PValue, want)
	}
}

func TestSignTestPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	SignTest([]float64{1}, []float64{1, 2})
}

func TestSignTestString(t *testing.T) {
	r := SignTest([]float64{1, 0}, []float64{0, 1})
	if got := r.String(); got == "" {
		t.Error("empty String()")
	}
}

func TestPerSubscriptionF1(t *testing.T) {
	scores := [][]float64{
		{0.9, 0.1}, // sub 0: event 0 relevant, ranked first -> F1 1
		{0.1, 0.9}, // sub 1: event 0 relevant, ranked last
	}
	relevant := func(si, ei int) bool { return ei == 0 }
	got := PerSubscriptionF1(scores, relevant)
	if len(got) != 2 || got[0] != 1 {
		t.Errorf("got %v", got)
	}
	if got[1] >= got[0] {
		t.Errorf("badly ranked sub scored %v >= %v", got[1], got[0])
	}
}
