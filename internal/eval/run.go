package eval

import (
	"fmt"
	"math/rand"
	"time"

	"thematicep/internal/event"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
	"thematicep/internal/workload"
)

// Scorer assigns a relevance score to an event for a subscription; 0 means
// no match. The approximate matcher's top-1 mapping score, and the binary
// baselines' 0/1 decisions, both implement it.
type Scorer interface {
	Score(s *event.Subscription, e *event.Event) float64
}

// Result summarizes one sub-experiment: matching quality and time
// efficiency over the whole workload.
type Result struct {
	// F1 is the mean maximal F1 over subscriptions (§5.1).
	F1 float64
	// Throughput is processed events per second: every event is matched
	// against every subscription, as a broker would.
	Throughput float64
	// Elapsed is the total matching wall time.
	Elapsed time.Duration
	// Events and Subscriptions record the workload size.
	Events, Subscriptions int
}

// Run matches every workload event against every approximate subscription
// with the given scorer and computes the sub-experiment result. Themes must
// already be applied to the workload (or cleared for non-thematic runs).
func Run(scorer Scorer, w *workload.Workload) Result {
	nSubs := len(w.ApproxSubs)
	scores := make([][]float64, nSubs)
	for si := range scores {
		scores[si] = make([]float64, len(w.Events))
	}

	start := time.Now()
	if m, ok := scorer.(*matcher.Matcher); ok {
		// Fast path: prepare subscriptions once and each event once, as a
		// production broker would (subscriptions are long-lived; one event
		// is matched against every subscription).
		prepared := make([]*matcher.PreparedSubscription, nSubs)
		for si, s := range w.ApproxSubs {
			prepared[si] = m.PrepareSubscription(s)
		}
		for ei, e := range w.Events {
			pe := m.PrepareEvent(e)
			for si := range prepared {
				scores[si][ei] = m.ScorePrepared(prepared[si], pe)
			}
		}
	} else {
		for ei, e := range w.Events {
			for si, s := range w.ApproxSubs {
				scores[si][ei] = scorer.Score(s, e)
			}
		}
	}
	elapsed := time.Since(start)

	f1Sum := 0.0
	for si := range w.ApproxSubs {
		f1Sum += MaxF1(scores[si], func(ei int) bool { return w.Relevant(si, ei) })
	}
	res := Result{
		Elapsed:       elapsed,
		Events:        len(w.Events),
		Subscriptions: nSubs,
	}
	if nSubs > 0 {
		res.F1 = f1Sum / float64(nSubs)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(len(w.Events)) / secs
	}
	return res
}

// Cell is one cell of the theme-size grid: the sample statistics of the
// sub-experiments sharing (event theme size, subscription theme size).
// It backs Figures 7 (MeanF1), 8 (StdF1), 9 (MeanThroughput), and
// 10 (StdThroughput).
type Cell struct {
	EventSize, SubSize            int
	MeanF1, StdF1                 float64
	MeanThroughput, StdThroughput float64
	Samples                       int
}

// GridConfig controls the grid experiment of §5.2.4.
type GridConfig struct {
	// Sizes is the list of theme sizes forming both grid axes
	// (paper: 1..30).
	Sizes []int
	// Samples is the number of random theme combinations per cell
	// (paper: 5).
	Samples int
	// Seed makes the theme sampling deterministic.
	Seed int64
	// Zipf switches tag sampling to the realistic-tagging model
	// (DESIGN.md §4 ablation).
	Zipf bool
	// Progress, when non-nil, receives a line per completed cell.
	Progress func(string)
}

// DefaultGridSizes is the reduced deterministic grid of DESIGN.md §5.
func DefaultGridSizes() []int { return []int{1, 2, 3, 5, 7, 10, 15, 20, 25, 30} }

// PaperGridSizes is the full 1..30 axis.
func PaperGridSizes() []int {
	out := make([]int, 30)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// RunGrid executes the grid of sub-experiments: for every (event size, sub
// size) pair it samples theme combinations, applies them to the workload,
// runs the scorer, and aggregates per-cell statistics. The semantic space's
// caches are reset before each sub-experiment so that every sub-experiment
// is independent, as in the paper. Cells are returned row-major over
// cfg.Sizes x cfg.Sizes.
func RunGrid(scorer Scorer, space *semantics.Space, w *workload.Workload, cfg GridConfig) []Cell {
	if cfg.Samples <= 0 {
		cfg.Samples = 2
	}
	var cells []Cell
	for _, es := range cfg.Sizes {
		for _, ss := range cfg.Sizes {
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(es)<<32 ^ int64(ss)<<16))
			f1s := make([]float64, 0, cfg.Samples)
			thrs := make([]float64, 0, cfg.Samples)
			for n := 0; n < cfg.Samples; n++ {
				var combo workload.ThemeCombination
				if cfg.Zipf {
					combo = w.SampleThemesZipf(rng, es, ss)
				} else {
					combo = w.SampleThemes(rng, es, ss)
				}
				w.ApplyThemes(combo)
				if space != nil {
					space.ResetCaches()
				}
				res := Run(scorer, w)
				f1s = append(f1s, res.F1)
				thrs = append(thrs, res.Throughput)
			}
			cell := Cell{EventSize: es, SubSize: ss, Samples: cfg.Samples}
			cell.MeanF1, cell.StdF1 = MeanStd(f1s)
			cell.MeanThroughput, cell.StdThroughput = MeanStd(thrs)
			cells = append(cells, cell)
			if cfg.Progress != nil {
				cfg.Progress(fmt.Sprintf("cell e=%d s=%d: F1=%.3f thr=%.0f ev/s",
					es, ss, cell.MeanF1, cell.MeanThroughput))
			}
		}
	}
	w.ClearThemes()
	return cells
}

// GridSummary aggregates a grid against a baseline result for the paper's
// headline comparisons (§5.3).
type GridSummary struct {
	// MeanF1 and MeanThroughput average over all cells.
	MeanF1, MeanThroughput float64
	// MaxF1 and MaxThroughput are the best cell values.
	MaxF1, MaxThroughput float64
	// FracF1AboveBaseline is the fraction of cells whose mean F1 exceeds
	// the baseline F1 (paper: >70%); FracThroughputAboveBaseline likewise
	// (paper: >92%).
	FracF1AboveBaseline, FracThroughputAboveBaseline float64
}

// Summarize computes the headline statistics of a grid relative to the
// non-thematic baseline result.
func Summarize(cells []Cell, baseline Result) GridSummary {
	var s GridSummary
	if len(cells) == 0 {
		return s
	}
	f1Above, thrAbove := 0, 0
	for _, c := range cells {
		s.MeanF1 += c.MeanF1
		s.MeanThroughput += c.MeanThroughput
		if c.MeanF1 > s.MaxF1 {
			s.MaxF1 = c.MeanF1
		}
		if c.MeanThroughput > s.MaxThroughput {
			s.MaxThroughput = c.MeanThroughput
		}
		if c.MeanF1 > baseline.F1 {
			f1Above++
		}
		if c.MeanThroughput > baseline.Throughput {
			thrAbove++
		}
	}
	n := float64(len(cells))
	s.MeanF1 /= n
	s.MeanThroughput /= n
	s.FracF1AboveBaseline = float64(f1Above) / n
	s.FracThroughputAboveBaseline = float64(thrAbove) / n
	return s
}
