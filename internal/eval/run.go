package eval

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"strconv"

	"thematicep/internal/event"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
	"thematicep/internal/subindex"
	"thematicep/internal/workload"
)

// Scorer assigns a relevance score to an event for a subscription; 0 means
// no match. The approximate matcher's top-1 mapping score, and the binary
// baselines' 0/1 decisions, both implement it.
type Scorer interface {
	Score(s *event.Subscription, e *event.Event) float64
}

// PreparedScorer is the optional prepare-once extension of Scorer.
// *matcher.Matcher satisfies it structurally; Run uses it so eval measures
// the same prepared hot path a production broker runs (subscriptions
// prepared once, each event prepared once and scored against every
// prepared subscription).
type PreparedScorer interface {
	Scorer
	PrepareSubscription(s *event.Subscription) *matcher.PreparedSubscription
	PrepareEvent(e *event.Event) *matcher.PreparedEvent
	ScorePrepared(ps *matcher.PreparedSubscription, pe *matcher.PreparedEvent) float64
}

// Result summarizes one sub-experiment: matching quality and time
// efficiency over the whole workload.
type Result struct {
	// F1 is the mean maximal F1 over subscriptions (§5.1).
	F1 float64
	// Throughput is processed events per second: every event is matched
	// against every subscription, as a broker would.
	Throughput float64
	// Elapsed is the total matching wall time.
	Elapsed time.Duration
	// Events and Subscriptions record the workload size.
	Events, Subscriptions int
	// ScoredPairs counts (subscription, event) pairs actually scored;
	// PrunedPairs counts pairs the candidate index skipped (provably score
	// 0; see WithCandidatePruning). Without pruning, ScoredPairs is the
	// full product and PrunedPairs is 0.
	ScoredPairs, PrunedPairs uint64
}

// RunOption configures Run.
type RunOption interface {
	applyRun(*runConfig)
}

type runConfig struct {
	pruning bool
}

type candidatePruningOption bool

func (o candidatePruningOption) applyRun(c *runConfig) { c.pruning = bool(o) }

// WithCandidatePruning enables the broker's internal/subindex candidate
// pruning inside the prepared fast path (default off: the paper's
// throughput figures measure a full scan, so eval keeps that semantics
// unless asked). Skipped pairs provably score 0, so F1 is unchanged;
// PrunedPairs reports how many the index removed. Only the PreparedScorer
// path prunes — plain scorers (the baselines) may not honor the §3.4
// exact-term contract the index relies on.
func WithCandidatePruning(enabled bool) RunOption { return candidatePruningOption(enabled) }

// Run matches every workload event against every approximate subscription
// with the given scorer and computes the sub-experiment result. Themes must
// already be applied to the workload (or cleared for non-thematic runs).
func Run(scorer Scorer, w *workload.Workload, opts ...RunOption) Result {
	var cfg runConfig
	for _, opt := range opts {
		opt.applyRun(&cfg)
	}
	nSubs := len(w.ApproxSubs)
	scores := make([][]float64, nSubs)
	for si := range scores {
		scores[si] = make([]float64, len(w.Events))
	}

	var scored, prunedPairs uint64
	start := time.Now()
	if m, ok := scorer.(PreparedScorer); ok {
		// Fast path: prepare subscriptions once and each event once, as a
		// production broker would (subscriptions are long-lived; one event
		// is matched against every subscription). Scoring goes through
		// ScorePrepared end to end, so eval exercises exactly the loop the
		// broker's worker pool runs.
		prepared := make([]*matcher.PreparedSubscription, nSubs)
		var ix *subindex.Index[int]
		if cfg.pruning {
			ix = subindex.New[int]()
		}
		for si, s := range w.ApproxSubs {
			prepared[si] = m.PrepareSubscription(s)
			if ix != nil {
				ix.Add(strconv.Itoa(si), s, si)
			}
		}
		for ei, e := range w.Events {
			pe := m.PrepareEvent(e)
			if ix != nil {
				// Skipped pairs keep their zero score — the index only
				// skips pairs that provably score 0, so the score matrix
				// (and hence F1) is identical to the full scan.
				c, p := ix.Candidates(e, func(si int) {
					scores[si][ei] = m.ScorePrepared(prepared[si], pe)
				})
				scored += uint64(c)
				prunedPairs += uint64(p)
				continue
			}
			for si := range prepared {
				scores[si][ei] = m.ScorePrepared(prepared[si], pe)
			}
			scored += uint64(nSubs)
		}
	} else {
		for ei, e := range w.Events {
			for si, s := range w.ApproxSubs {
				scores[si][ei] = scorer.Score(s, e)
			}
			scored += uint64(nSubs)
		}
	}
	elapsed := time.Since(start)

	f1Sum := 0.0
	for si := range w.ApproxSubs {
		f1Sum += MaxF1(scores[si], func(ei int) bool { return w.Relevant(si, ei) })
	}
	res := Result{
		Elapsed:       elapsed,
		Events:        len(w.Events),
		Subscriptions: nSubs,
		ScoredPairs:   scored,
		PrunedPairs:   prunedPairs,
	}
	if nSubs > 0 {
		res.F1 = f1Sum / float64(nSubs)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(len(w.Events)) / secs
	}
	return res
}

// Cell is one cell of the theme-size grid: the sample statistics of the
// sub-experiments sharing (event theme size, subscription theme size).
// It backs Figures 7 (MeanF1), 8 (StdF1), 9 (MeanThroughput), and
// 10 (StdThroughput).
type Cell struct {
	EventSize, SubSize            int
	MeanF1, StdF1                 float64
	MeanThroughput, StdThroughput float64
	Samples                       int
	// Wall is the cell's total wall time across its sub-experiments
	// (sampling, theme application, cache resets, and matching), the
	// telemetry complement to MeanThroughput's matching-only rate.
	Wall time.Duration
	// ProjHitRate is the projection-cache hit rate over the cell's
	// matching work (0 when the scorer has no space). Caches are reset per
	// sub-experiment, so this isolates within-sub-experiment reuse.
	ProjHitRate float64
}

// GridConfig controls the grid experiment of §5.2.4.
type GridConfig struct {
	// Sizes is the list of theme sizes forming both grid axes
	// (paper: 1..30).
	Sizes []int
	// Samples is the number of random theme combinations per cell
	// (paper: 5).
	Samples int
	// Seed makes the theme sampling deterministic.
	Seed int64
	// Zipf switches tag sampling to the realistic-tagging model
	// (DESIGN.md §4 ablation).
	Zipf bool
	// Progress, when non-nil, receives a line per completed cell.
	Progress func(string)
	// Parallelism runs grid cells on up to this many workers (values <= 1
	// keep the serial path). Parallel runs require NewScorer.
	Parallelism int
	// NewScorer builds an independent scorer+space pair for one worker.
	// Each worker owns its own semantic space (sub-experiments reset caches,
	// which must not interleave across cells) and its own workload clone
	// (theme application mutates the workload in place). The returned space
	// may be nil for scorers without one.
	NewScorer func() (Scorer, *semantics.Space)
}

// DefaultGridSizes is the reduced deterministic grid of DESIGN.md §5.
func DefaultGridSizes() []int { return []int{1, 2, 3, 5, 7, 10, 15, 20, 25, 30} }

// PaperGridSizes is the full 1..30 axis.
func PaperGridSizes() []int {
	out := make([]int, 30)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// RunGrid executes the grid of sub-experiments: for every (event size, sub
// size) pair it samples theme combinations, applies them to the workload,
// runs the scorer, and aggregates per-cell statistics. The semantic space's
// caches are reset before each sub-experiment so that every sub-experiment
// is independent, as in the paper. Cells are returned row-major over
// cfg.Sizes x cfg.Sizes.
func RunGrid(scorer Scorer, space *semantics.Space, w *workload.Workload, cfg GridConfig) []Cell {
	if cfg.Samples <= 0 {
		cfg.Samples = 2
	}
	if cfg.Parallelism > 1 && cfg.NewScorer != nil {
		return runGridParallel(w, cfg)
	}
	cells := make([]Cell, 0, len(cfg.Sizes)*len(cfg.Sizes))
	for _, es := range cfg.Sizes {
		for _, ss := range cfg.Sizes {
			cells = append(cells, runGridCell(scorer, space, w, cfg, es, ss))
		}
	}
	w.ClearThemes()
	return cells
}

// runGridCell runs the cfg.Samples sub-experiments of one (event size, sub
// size) cell. The per-cell rng seed depends only on (cfg.Seed, es, ss), so a
// cell's result is identical whether cells run serially or in parallel.
func runGridCell(scorer Scorer, space *semantics.Space, w *workload.Workload, cfg GridConfig, es, ss int) Cell {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(es)<<32 ^ int64(ss)<<16))
	f1s := make([]float64, 0, cfg.Samples)
	thrs := make([]float64, 0, cfg.Samples)
	cellStart := time.Now()
	var projBefore semantics.CacheMetric
	if space != nil {
		projBefore = space.ProjectionMetric()
	}
	for n := 0; n < cfg.Samples; n++ {
		var combo workload.ThemeCombination
		if cfg.Zipf {
			combo = w.SampleThemesZipf(rng, es, ss)
		} else {
			combo = w.SampleThemes(rng, es, ss)
		}
		w.ApplyThemes(combo)
		if space != nil {
			space.ResetCaches()
		}
		res := Run(scorer, w)
		f1s = append(f1s, res.F1)
		thrs = append(thrs, res.Throughput)
	}
	cell := Cell{EventSize: es, SubSize: ss, Samples: cfg.Samples, Wall: time.Since(cellStart)}
	if space != nil {
		// Hit rate from this cell's delta of the cumulative counters
		// (counters survive ResetCaches; only entries are dropped).
		after := space.ProjectionMetric()
		hits := after.Hits - projBefore.Hits
		if total := hits + after.Misses - projBefore.Misses; total > 0 {
			cell.ProjHitRate = float64(hits) / float64(total)
		}
	}
	cell.MeanF1, cell.StdF1 = MeanStd(f1s)
	cell.MeanThroughput, cell.StdThroughput = MeanStd(thrs)
	if cfg.Progress != nil {
		cfg.Progress(fmt.Sprintf("cell e=%d s=%d: F1=%.3f thr=%.0f ev/s wall=%s projhit=%.2f",
			es, ss, cell.MeanF1, cell.MeanThroughput, cell.Wall.Round(time.Millisecond), cell.ProjHitRate))
	}
	return cell
}

// runGridParallel distributes grid cells over cfg.Parallelism workers. Each
// worker gets its own scorer+space from cfg.NewScorer and its own workload
// clone, so cache resets and theme application stay cell-local. Cells land in
// a pre-sized slice by index, preserving the serial row-major order; F1
// values are bit-for-bit identical to the serial run (throughput, a wall-time
// measurement, is not deterministic on either path).
func runGridParallel(w *workload.Workload, cfg GridConfig) []Cell {
	type job struct{ es, ss int }
	jobs := make([]job, 0, len(cfg.Sizes)*len(cfg.Sizes))
	for _, es := range cfg.Sizes {
		for _, ss := range cfg.Sizes {
			jobs = append(jobs, job{es, ss})
		}
	}
	cells := make([]Cell, len(jobs))
	var next atomic.Int64
	workers := cfg.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scorer, space := cfg.NewScorer()
			local := w.Clone()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				cells[i] = runGridCell(scorer, space, local, cfg, jobs[i].es, jobs[i].ss)
			}
		}()
	}
	wg.Wait()
	return cells
}

// GridSummary aggregates a grid against a baseline result for the paper's
// headline comparisons (§5.3).
type GridSummary struct {
	// MeanF1 and MeanThroughput average over all cells.
	MeanF1, MeanThroughput float64
	// MaxF1 and MaxThroughput are the best cell values.
	MaxF1, MaxThroughput float64
	// FracF1AboveBaseline is the fraction of cells whose mean F1 exceeds
	// the baseline F1 (paper: >70%); FracThroughputAboveBaseline likewise
	// (paper: >92%).
	FracF1AboveBaseline, FracThroughputAboveBaseline float64
}

// Summarize computes the headline statistics of a grid relative to the
// non-thematic baseline result.
func Summarize(cells []Cell, baseline Result) GridSummary {
	var s GridSummary
	if len(cells) == 0 {
		return s
	}
	f1Above, thrAbove := 0, 0
	for _, c := range cells {
		s.MeanF1 += c.MeanF1
		s.MeanThroughput += c.MeanThroughput
		if c.MeanF1 > s.MaxF1 {
			s.MaxF1 = c.MeanF1
		}
		if c.MeanThroughput > s.MaxThroughput {
			s.MaxThroughput = c.MeanThroughput
		}
		if c.MeanF1 > baseline.F1 {
			f1Above++
		}
		if c.MeanThroughput > baseline.Throughput {
			thrAbove++
		}
	}
	n := float64(len(cells))
	s.MeanF1 /= n
	s.MeanThroughput /= n
	s.FracF1AboveBaseline = float64(f1Above) / n
	s.FracThroughputAboveBaseline = float64(thrAbove) / n
	return s
}
