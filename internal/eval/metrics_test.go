package eval

import (
	"math"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMaxF1PerfectRanking(t *testing.T) {
	// 3 relevant events ranked at the top of 6.
	scores := []float64{0.9, 0.8, 0.7, 0.3, 0.2, 0.1}
	relevant := func(i int) bool { return i < 3 }
	// At recall 1.0 precision is 1.0 -> F1 = 1.
	if got := MaxF1(scores, relevant); !almostEqual(got, 1) {
		t.Errorf("MaxF1 = %v, want 1", got)
	}
}

func TestMaxF1WorstRanking(t *testing.T) {
	// Relevant events have score 0: never retrieved.
	scores := []float64{0, 0, 0.9, 0.8}
	relevant := func(i int) bool { return i < 2 }
	if got := MaxF1(scores, relevant); got != 0 {
		t.Errorf("MaxF1 = %v, want 0", got)
	}
}

func TestMaxF1NoRelevant(t *testing.T) {
	scores := []float64{0.5, 0.4}
	if got := MaxF1(scores, func(int) bool { return false }); got != 0 {
		t.Errorf("MaxF1 with empty ground truth = %v, want 0", got)
	}
}

func TestMaxF1Interleaved(t *testing.T) {
	// Ranking: R N R N (scores descending). 2 relevant.
	// k=1: p=1, r=0.5; k=2: p=.5, r=.5; k=3: p=2/3, r=1; k=4: p=.5, r=1.
	// Interp p at r=0.5 -> 1; F1(0.5, 1) = 2*.5/1.5 = 2/3.
	// Interp p at r=1.0 -> 2/3; F1(1, 2/3) = 2*(2/3)/(5/3) = 0.8.
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	relevant := func(i int) bool { return i == 0 || i == 2 }
	if got := MaxF1(scores, relevant); !almostEqual(got, 0.8) {
		t.Errorf("MaxF1 = %v, want 0.8", got)
	}
}

func TestMaxF1PartialRecallCeiling(t *testing.T) {
	// Only 1 of 4 relevant events is retrieved, as the top hit.
	// Recall ceiling 0.25: points 0.1 and 0.2 reachable with p=1.
	// Best F1 = F1(0.2, 1.0) = 2*.2/1.2 = 1/3.
	scores := []float64{0.9, 0, 0, 0}
	relevant := func(i int) bool { return true }
	if got := MaxF1(scores, relevant); !almostEqual(got, 1.0/3.0) {
		t.Errorf("MaxF1 = %v, want 1/3", got)
	}
}

func TestMaxF1TieBreakDeterministic(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5}
	relevant := func(i int) bool { return i == 0 }
	a := MaxF1(scores, relevant)
	b := MaxF1(scores, relevant)
	if a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestPrecisionRecall(t *testing.T) {
	matched := func(i int) bool { return i < 4 }     // 0,1,2,3
	relevant := func(i int) bool { return i%2 == 0 } // 0,2,4,6,8 of 10
	p, r := PrecisionRecall(matched, relevant, 10)
	// TP = {0,2} = 2, FP = {1,3} = 2, FN = {4,6,8} = 3.
	if !almostEqual(p, 0.5) {
		t.Errorf("precision = %v, want 0.5", p)
	}
	if !almostEqual(r, 0.4) {
		t.Errorf("recall = %v, want 0.4", r)
	}
}

func TestPrecisionRecallEdge(t *testing.T) {
	p, r := PrecisionRecall(func(int) bool { return false }, func(int) bool { return false }, 5)
	if p != 0 || r != 0 {
		t.Errorf("empty case = %v, %v", p, r)
	}
}

func TestF1(t *testing.T) {
	if got := F1(1, 1); !almostEqual(got, 1) {
		t.Errorf("F1(1,1) = %v", got)
	}
	if got := F1(0, 0); got != 0 {
		t.Errorf("F1(0,0) = %v", got)
	}
	if got := F1(0.5, 1); !almostEqual(got, 2.0/3.0) {
		t.Errorf("F1(0.5,1) = %v", got)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(mean, 5) || !almostEqual(std, 2) {
		t.Errorf("MeanStd = %v, %v; want 5, 2", mean, std)
	}
	mean, std = MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Errorf("MeanStd(nil) = %v, %v", mean, std)
	}
	mean, std = MeanStd([]float64{3})
	if mean != 3 || std != 0 {
		t.Errorf("MeanStd singleton = %v, %v", mean, std)
	}
}

func TestRecallPointsShape(t *testing.T) {
	if len(RecallPoints) != 11 || RecallPoints[0] != 0 || RecallPoints[10] != 1 {
		t.Errorf("RecallPoints = %v", RecallPoints)
	}
}
