package query

import (
	"io"

	"thematicep/internal/broker"
	"thematicep/internal/telemetry"
)

// WriteMetrics implements broker.Collector: per-query counters and window
// occupancy gauges plus the shared event-to-detection latency histogram,
// in the thematicep_query_* namespace. Stats() sorts by name, so the
// exposition is stable across scrapes.
func (e *Engine) WriteMetrics(w io.Writer) {
	stats := e.Stats()
	broker.WriteGauge(w, "thematicep_query_active",
		"Currently registered continuous queries.", len(stats))
	for _, st := range stats {
		labels := []telemetry.Label{{Key: "query", Value: st.Name}}
		broker.WriteCounterVec(w, "thematicep_query_events_total",
			"Deliveries fed into a query's pattern.", labels, st.Fed)
		broker.WriteCounterVec(w, "thematicep_query_deduped_total",
			"Duplicate event IDs suppressed before a query's pattern.", labels, st.Deduped)
		broker.WriteCounterVec(w, "thematicep_query_detections_total",
			"Detections emitted by a query.", labels, st.Detections)
		broker.WriteCounterVec(w, "thematicep_query_dropped_total",
			"Detections dropped by a query's overflow policy.", labels, st.Dropped)
		broker.WriteGaugeVec(w, "thematicep_query_window_events",
			"Window state held by a query's pattern (open partials, buffered matches, pending triggers).",
			labels, float64(st.Occupancy))
	}
	e.detectHist.WriteMetrics(w)
}
