package query

import (
	"fmt"
	"net"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cluster"
	"thematicep/internal/event"
	"thematicep/internal/faultinject"
)

type clusterNode struct {
	b    *broker.Broker
	srv  *broker.Server
	node *cluster.Node
	eng  *Engine
	addr string
}

// startQueryCluster brings up size federated brokers, each with its own
// continuous-query engine mounted over the cluster node (so registered
// queries see federated deliveries) and installed behind the server's
// query frames. Outbound peer links run through the shared injector.
func startQueryCluster(t *testing.T, size int, inj *faultinject.Injector) []*clusterNode {
	t.Helper()
	ns := make([]*clusterNode, size)
	addrs := make([]string, size)
	for i := range ns {
		b := broker.New(exactMatcher(), broker.WithReplayBuffer(0))
		srv := broker.NewServer(b)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ns[i] = &clusterNode{b: b, srv: srv, addr: addr.String()}
		addrs[i] = addr.String()
	}
	dial := inj.Dialer(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	})
	for i, tn := range ns {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node, err := cluster.New(tn.b, cluster.Config{
			Self:              tn.addr,
			Peers:             peers,
			ReconnectMin:      5 * time.Millisecond,
			ReconnectMax:      50 * time.Millisecond,
			WriteTimeout:      200 * time.Millisecond,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  150 * time.Millisecond,
			BreakerThreshold:  2,
			BreakerCooldown:   100 * time.Millisecond,
			Dial:              dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.srv.SetBackend(node)
		tn.srv.SetPeerHandler(node)
		tn.node = node
		tn.eng = New(node, WithFlushInterval(25*time.Millisecond))
		tn.srv.SetQueryRegistrar(tn.eng)
	}
	for _, tn := range ns {
		tn.node.Start()
	}
	t.Cleanup(func() {
		for _, tn := range ns {
			tn.eng.Close()
			tn.node.Close()
			tn.srv.Close()
			tn.b.Close()
		}
	})
	return ns
}

func findTag(t *testing.T, r *cluster.Ring, owner string) string {
	t.Helper()
	for i := 0; i < 5000; i++ {
		tag := fmt.Sprintf("theme-%d", i)
		if r.Owner(tag) == owner {
			return tag
		}
	}
	t.Fatalf("no tag owned by %q in 5000 candidates", owner)
	return ""
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterCountQueryAcrossPartitionHeal is the query-subsystem chaos
// acceptance soak: a count-burst query registered on the theme shard that
// owns it, fed by publishes from a different node, with seeded link chaos
// and a full partition/heal cycle between two bursts. The query must fire
// exactly once per burst excursion (no duplicate detections across the
// heal, nothing detected from forwards shed during the partition), every
// constituent must belong to its burst, and no event ID may appear in two
// detections.
func TestClusterCountQueryAcrossPartitionHeal(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:       42,
		LatencyMax: 500 * time.Microsecond,
		StallProb:  0.002,
		StallFor:   50 * time.Millisecond,
	})
	ns := startQueryCluster(t, 3, inj)
	nodeA, nodeB := ns[0], ns[1]
	ring := nodeA.node.Ring()
	tagB := findTag(t, ring, nodeB.addr)

	const window = 200 * time.Millisecond
	spec := &broker.QuerySpec{
		Name: "surge",
		Kind: string(KindCount),
		Subscription: &event.Subscription{
			Theme:      []string{tagB},
			Predicates: []event.Predicate{{Attr: "type", Value: "spike"}},
		},
		Window:      window,
		MinExpected: 3,
	}
	// Window state must live on the owning shard: the engine at B hosts
	// the query, and its feeding subscription is purely local there.
	h, err := nodeB.eng.Register(spec)
	if err != nil {
		t.Fatal(err)
	}
	var detections []broker.QueryDetection
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for d := range h.C() {
			detections = append(detections, d)
		}
	}()
	detected := func() uint64 {
		for _, st := range nodeB.eng.Stats() {
			if st.Name == "surge" {
				return st.Detections
			}
		}
		return 0
	}

	// Bursts are published from A and federated to the owning shard B.
	// Events are spaced a few ms apart so a link stall or reconnect can
	// only shed a couple of them; minExpected 3 out of 8 leaves margin.
	burst := func(prefix string) {
		t.Helper()
		for i := 0; i < 8; i++ {
			if err := nodeA.node.Publish(&event.Event{
				ID:    fmt.Sprintf("%s-%d", prefix, i),
				Theme: []string{tagB},
				Tuples: []event.Tuple{
					{Attr: "type", Value: "spike"},
					{Attr: "seq", Value: fmt.Sprintf("%d", i)},
				},
			}); err != nil {
				t.Fatal(err)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}

	// Phase 1 — a burst under mild link chaos fires the query once.
	burst("burst1")
	waitFor(t, "first burst detection", func() bool { return detected() >= 1 })
	time.Sleep(2 * window) // quiet gap: the excursion ends, the query re-arms

	// Phase 2 — partition: forwards from A are shed, so nothing reaches
	// the window on B and the query must stay silent.
	inj.Partition(true)
	waitFor(t, "A's breakers to open under partition", func() bool {
		for _, state := range nodeA.node.PeerStates() {
			if state != cluster.BreakerOpen {
				return false
			}
		}
		return true
	})
	burst("part")
	time.Sleep(2 * window)
	if n := detected(); n != 1 {
		t.Fatalf("detections during partition = %d, want 1 (shed forwards must not fire the query)", n)
	}

	// Phase 3 — heal: the mesh reconnects and a fresh burst fires the
	// query exactly once more. Federation dedup plus the engine's event-ID
	// ring must not let replayed or duplicate forwards double-fire it.
	inj.Partition(false)
	waitFor(t, "all breakers closed after heal", func() bool {
		for _, tn := range ns {
			st := tn.node.Stats()
			if st.PeersConnected != 2 || st.PeersOpen != 0 {
				return false
			}
		}
		return true
	})
	burst("burst2")
	waitFor(t, "post-heal burst detection", func() bool { return detected() >= 2 })
	time.Sleep(2 * window) // allow any duplicate path to land
	if n := detected(); n != 2 {
		t.Fatalf("total detections = %d, want exactly 2 (one per burst excursion)", n)
	}

	h.Close()
	<-collected
	if len(detections) != 2 {
		t.Fatalf("collected %d detections, want 2", len(detections))
	}
	seen := make(map[string]int)
	for i, d := range detections {
		if d.Query != "surge" {
			t.Errorf("detection %d query = %q, want surge", i, d.Query)
		}
		if len(d.Events) == 0 {
			t.Errorf("detection %d has no constituent events", i)
		}
		wantPrefix := fmt.Sprintf("burst%d", i+1)
		for _, e := range d.Events {
			if got := e.ID[:len(wantPrefix)]; got != wantPrefix {
				t.Errorf("detection %d constituent %s outside its burst (want prefix %s)",
					i, e.ID, wantPrefix)
			}
			seen[e.ID]++
		}
		if d.Probability != 1 {
			t.Errorf("detection %d probability = %v, want 1 (capped expectation)", i, d.Probability)
		}
	}
	for id, n := range seen {
		if n > 1 {
			t.Errorf("event %s appears in %d detections, want 1", id, n)
		}
	}
	t.Logf("soak: %d detections, engine stats %+v, injector stats %+v",
		len(detections), nodeB.eng.Stats(), inj.Stats())
}
