// Package query is the continuous-query engine: it registers CEP patterns
// the way the broker registers subscriptions and runs them against the
// live delivery stream. The paper builds its probabilistic single-event
// matcher precisely so matches "can feed into a complex event processing
// module" (§3.5); this package closes that loop. Each named query owns a
// thematic subscription that selects and scores its feeding stream — the
// match score becomes the constituent probability — and a cep pattern
// (sequence, conjunction, negation, count) that turns scored deliveries
// into detections.
//
// In cluster mode the engine runs on the theme shard that owns the query's
// feeding subscription: the broker server redirects query frames exactly
// like subscribe frames, so window state always lives where the theme's
// events land, and the backend's federated subscription (with its event-ID
// dedup) feeds tags the shard does not own. The engine adds its own
// event-ID dedup ring on top, so a replayed or re-forwarded event cannot
// enter a window twice — detections stay duplicate-free across a
// partition/heal cycle.
//
// Time-driven emissions (negation expiry, aggregate re-arming) need a
// driver even when no events arrive: a ticker flushes every pattern on an
// interval, and Broker.OnDrain hooks the engine's Drain so shutdown closes
// all open windows and emits what they still hold.
package query

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/cep"
	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

// Query kinds (QuerySpec.Kind).
const (
	KindSequence    = "sequence"
	KindConjunction = "conjunction"
	KindNegation    = "negation"
	KindCount       = "count"
)

// DefaultFlushInterval is how often the engine flushes pattern windows on
// a quiet stream.
const DefaultFlushInterval = time.Second

// dedupWindow bounds the engine's per-query event-ID dedup ring, mirroring
// the federation edge dedup size.
const dedupWindow = 1024

// Errors returned by Register.
var (
	ErrClosed         = errors.New("query: engine closed")
	ErrDuplicateQuery = errors.New("query: duplicate query name")
)

// Option configures an Engine.
type Option func(*Engine)

// WithClock replaces the wall clock (tests use telemetry.Manual). The
// clock is shared with every pattern the engine builds.
func WithClock(c telemetry.Clock) Option { return func(e *Engine) { e.clock = c } }

// WithTracer attaches the broker's tracer so detections append
// "query:<name>" spans to sampled event traces.
func WithTracer(tr *telemetry.Tracer) Option { return func(e *Engine) { e.tracer = tr } }

// WithDetectionSLO attaches a latency SLO fed by every detection's
// event-to-detection latency (the same measurement as the detect
// histogram), so burn-rate alerting covers the CEP path alongside
// delivery. A nil SLO is ignored.
func WithDetectionSLO(s *telemetry.SLO) Option { return func(e *Engine) { e.detectSLO = s } }

// WithFlushInterval overrides how often pattern windows are flushed on a
// quiet stream (DefaultFlushInterval); d <= 0 disables the ticker, leaving
// flushing to FlushExpired callers and Drain.
func WithFlushInterval(d time.Duration) Option { return func(e *Engine) { e.flushEvery = d } }

// WithDetectionBuffer sets each query's detection channel capacity
// (default 64, the broker's queue default). Overflow drops the oldest
// pending detection, mirroring the broker's delivery policy.
func WithDetectionBuffer(n int) Option { return func(e *Engine) { e.buf = n } }

// Journal records durable query registration changes (implemented by
// wal.Log): every Register and client-initiated Close is appended so a
// crashed broker re-registers its continuous queries on restart. The
// window state itself is not journaled — a recovered query restarts with
// an empty window, trading a partial pattern re-warm for a log that stays
// proportional to registrations, not traffic.
type Journal interface {
	QueryRegistered(spec *broker.QuerySpec)
	QueryUnregistered(name string)
}

// WithJournal installs a query registration journal.
func WithJournal(j Journal) Option { return func(e *Engine) { e.journal = j } }

// Engine owns named continuous queries over one backend (a local broker or
// a cluster node). It implements broker.QueryRegistrar for the wire server
// and broker.Collector for /metrics.
type Engine struct {
	be         broker.Backend
	clock      telemetry.Clock
	tracer     *telemetry.Tracer
	flushEvery time.Duration
	buf        int

	detectHist *telemetry.Histogram // event-to-detection latency
	detectSLO  *telemetry.SLO       // nil unless WithDetectionSLO enabled it
	journal    Journal              // nil unless WithJournal enabled it

	mu      sync.Mutex
	queries map[string]*Query
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

// New builds an engine over a backend and starts its flush ticker.
func New(be broker.Backend, opts ...Option) *Engine {
	e := &Engine{
		be:         be,
		clock:      telemetry.System,
		flushEvery: DefaultFlushInterval,
		buf:        64,
		queries:    make(map[string]*Query),
		done:       make(chan struct{}),
		detectHist: telemetry.NewHistogram("thematicep_query_detect_seconds",
			"Event-to-detection latency: detection emission minus the newest constituent's admission.",
			telemetry.LatencyBuckets()),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.buf < 1 {
		e.buf = 1
	}
	if e.flushEvery > 0 {
		e.wg.Add(1)
		go e.flushLoop()
	}
	return e
}

// Register validates a spec, builds its pattern, subscribes the feeding
// stream on the backend, and starts the feed goroutine.
func (e *Engine) Register(spec *broker.QuerySpec) (*Query, error) {
	if spec == nil {
		return nil, errors.New("query: nil spec")
	}
	if spec.Name == "" {
		return nil, errors.New("query: empty name")
	}
	if spec.Window <= 0 {
		return nil, fmt.Errorf("query %q: window must be positive", spec.Name)
	}
	if spec.Subscription == nil {
		return nil, fmt.Errorf("query %q: missing feeding subscription", spec.Name)
	}
	pattern, err := buildPattern(spec, e.clock)
	if err != nil {
		return nil, err
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := e.queries[spec.Name]; ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateQuery, spec.Name)
	}
	// Reserve the name before subscribing (the subscribe may be slow on a
	// federated backend); a racing Register of the same name must lose.
	e.queries[spec.Name] = nil
	e.mu.Unlock()

	// The feed is ephemeral: recovery re-creates it by re-registering the
	// journaled query, so it must not be journaled as a plain subscription.
	sub, err := e.be.SubscribeHandle(spec.Subscription, broker.Ephemeral())
	if err != nil {
		e.mu.Lock()
		delete(e.queries, spec.Name)
		e.mu.Unlock()
		return nil, fmt.Errorf("query %q: subscribe: %w", spec.Name, err)
	}

	q := &Query{
		eng:     e,
		name:    spec.Name,
		spec:    spec,
		pattern: pattern,
		sub:     sub,
		ch:      make(chan broker.QueryDetection, e.buf),
		seen:    make(map[string]struct{}, dedupWindow),
	}
	e.mu.Lock()
	if e.closed {
		delete(e.queries, spec.Name)
		e.mu.Unlock()
		sub.Close()
		return nil, ErrClosed
	}
	e.queries[spec.Name] = q
	e.mu.Unlock()

	q.wg.Add(1)
	go q.run()
	if e.journal != nil {
		e.journal.QueryRegistered(spec)
	}
	return q, nil
}

// RegisterQuery implements broker.QueryRegistrar.
func (e *Engine) RegisterQuery(spec *broker.QuerySpec) (broker.QueryHandle, error) {
	return e.Register(spec)
}

// Get returns a registered query by name.
func (e *Engine) Get(name string) (*Query, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[name]
	return q, ok && q != nil
}

// snapshot copies the live query set.
func (e *Engine) snapshot() []*Query {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		if q != nil {
			out = append(out, q)
		}
	}
	return out
}

func (e *Engine) flushLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.flushEvery)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
			e.FlushExpired()
		}
	}
}

// FlushExpired advances every pattern to the current clock time, emitting
// detections whose windows have closed — the driver that lets a quiet
// stream still fire negation expiries. It returns the number of
// detections emitted.
func (e *Engine) FlushExpired() int {
	now := e.clock.Now()
	total := 0
	for _, q := range e.snapshot() {
		total += q.flush(now, 0)
	}
	return total
}

// Drain force-closes every open window with end-of-stream semantics: each
// pattern is flushed to now + its window, so pending negation and
// aggregate state emits its final detections. Broker.OnDrain runs this
// between quiescing publishes and flushing subscriber queues, so the
// emissions still reach connected clients.
func (e *Engine) Drain() {
	now := e.clock.Now()
	for _, q := range e.snapshot() {
		q.flush(now, q.spec.Window+time.Nanosecond)
	}
}

// Close stops the flush ticker and shuts every query down.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	qs := make([]*Query, 0, len(e.queries))
	for _, q := range e.queries {
		if q != nil {
			qs = append(qs, q)
		}
	}
	e.queries = make(map[string]*Query)
	e.mu.Unlock()

	close(e.done)
	e.wg.Wait()
	for _, q := range qs {
		q.shutdown()
	}
}

// unregister removes q from the engine if it is still the registered
// holder of its name.
func (e *Engine) unregister(q *Query) {
	e.mu.Lock()
	removed := false
	if cur, ok := e.queries[q.name]; ok && cur == q {
		delete(e.queries, q.name)
		removed = true
	}
	e.mu.Unlock()
	// Only a client-initiated Close reaches here; engine shutdown goes
	// through q.shutdown() directly, so a graceful daemon stop never
	// erases journaled queries (and the daemon seals the log first anyway).
	if removed && e.journal != nil {
		e.journal.QueryUnregistered(q.name)
	}
}

// QueryStats is one query's counters.
type QueryStats struct {
	Name       string
	Kind       string
	Fed        uint64 // deliveries fed into the pattern
	Deduped    uint64 // duplicate event IDs suppressed before the pattern
	Detections uint64 // detections emitted
	Dropped    uint64 // detections dropped by the overflow policy
	Occupancy  int    // window state held by the pattern
}

// Stats snapshots every registered query, sorted by name.
func (e *Engine) Stats() []QueryStats {
	qs := e.snapshot()
	out := make([]QueryStats, 0, len(qs))
	for _, q := range qs {
		out = append(out, q.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DetectLatency snapshots the event-to-detection latency histogram.
func (e *Engine) DetectLatency() telemetry.HistogramSnapshot { return e.detectHist.Snapshot() }

// buildPattern compiles a spec into a clock-injected cep pattern.
func buildPattern(spec *broker.QuerySpec, clock telemetry.Clock) (cep.Pattern, error) {
	filters := make([]cep.Filter, len(spec.Steps))
	for i, st := range spec.Steps {
		if st.Attr == "" {
			return nil, fmt.Errorf("query %q: step %d: empty attribute", spec.Name, i)
		}
		if st.Value == "" {
			filters[i] = cep.HasAttr(st.Attr)
		} else {
			filters[i] = cep.AttrEquals(st.Attr, st.Value)
		}
	}
	switch spec.Kind {
	case KindSequence:
		if len(filters) == 0 {
			return nil, fmt.Errorf("query %q: sequence needs at least one step", spec.Name)
		}
		return cep.NewSequence(spec.Window, spec.Threshold, filters...).WithClock(clock), nil
	case KindConjunction:
		if len(filters) == 0 {
			return nil, fmt.Errorf("query %q: conjunction needs at least one step", spec.Name)
		}
		return cep.NewConjunction(spec.Window, spec.Threshold, filters...).WithClock(clock), nil
	case KindNegation:
		if len(filters) != 2 {
			return nil, fmt.Errorf("query %q: negation needs exactly two steps (trigger, absent)", spec.Name)
		}
		return cep.NewNegation(spec.Window, spec.Threshold, filters[0], filters[1]).WithClock(clock), nil
	case KindCount:
		if len(filters) > 1 {
			return nil, fmt.Errorf("query %q: count takes at most one step", spec.Name)
		}
		f := cep.Filter(func(*event.Event) bool { return true })
		if len(filters) == 1 {
			f = filters[0]
		}
		min := spec.MinExpected
		if min <= 0 {
			min = 1
		}
		return cep.NewCount(spec.Window, min, f).WithClock(clock), nil
	}
	return nil, fmt.Errorf("query %q: unknown kind %q", spec.Name, spec.Kind)
}

// Query is one registered continuous query: a feeding subscription, a cep
// pattern, and a detection stream. It implements broker.QueryHandle.
type Query struct {
	eng     *Engine
	name    string
	spec    *broker.QuerySpec
	pattern cep.Pattern
	sub     broker.SubHandle
	ch      chan broker.QueryDetection

	// Event-ID dedup ring: the federation edge already dedups across
	// peers, but the engine guards its window state independently so a
	// replayed delivery or an operator re-feed cannot double-count.
	seen  map[string]struct{}
	order []string

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	fed        atomic.Uint64
	deduped    atomic.Uint64
	detections atomic.Uint64
	dropped    atomic.Uint64
}

// Name returns the query's registered name.
func (q *Query) Name() string { return q.name }

// C is the detection stream; closed by Close (or engine shutdown).
func (q *Query) C() <-chan broker.QueryDetection { return q.ch }

// Spec returns the registered spec.
func (q *Query) Spec() *broker.QuerySpec { return q.spec }

// Close unregisters the query, stops its feed, and closes the detection
// channel. Safe to call more than once.
func (q *Query) Close() {
	q.eng.unregister(q)
	q.shutdown()
}

func (q *Query) shutdown() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	q.sub.Close() // closes the delivery channel, run() exits
	q.wg.Wait()
	close(q.ch)
}

// run feeds the subscription's deliveries into the pattern.
func (q *Query) run() {
	defer q.wg.Done()
	for d := range q.sub.C() {
		q.observe(d)
	}
}

// observe converts one delivery into an uncertain event (probability =
// match score, event time = broker admission time) and feeds the pattern.
func (q *Query) observe(d broker.Delivery) {
	if d.Event == nil {
		return
	}
	if d.Event.ID != "" && q.duplicate(d.Event.ID) {
		q.deduped.Add(1)
		return
	}
	q.fed.Add(1)
	at := d.At
	if at.IsZero() {
		at = q.eng.clock.Now()
	}
	dets := q.pattern.Observe(cep.UncertainEvent{
		Event:       d.Event,
		Probability: d.Score,
		At:          at,
	})
	if len(dets) == 0 {
		return
	}
	now := q.eng.clock.Now()
	for _, det := range dets {
		q.emit(det, now)
	}
	if tr := q.eng.tracer; tr != nil {
		// Late span on the completing event's trace: how long after
		// admission the detection fired.
		tr.AppendSpan(d.Event.ID, "query:"+q.name, at, now.Sub(at))
	}
}

// duplicate records an event ID and reports whether it was already seen,
// evicting oldest-first past the ring capacity.
func (q *Query) duplicate(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.seen[id]; ok {
		return true
	}
	q.seen[id] = struct{}{}
	q.order = append(q.order, id)
	if len(q.order) > dedupWindow {
		delete(q.seen, q.order[0])
		q.order = q.order[1:]
	}
	return false
}

// flush advances the pattern to now+pad and emits any resulting
// detections, returning how many fired.
func (q *Query) flush(now time.Time, pad time.Duration) int {
	f, ok := q.pattern.(cep.Flusher)
	if !ok {
		return 0
	}
	dets := f.Flush(now.Add(pad))
	for _, det := range dets {
		q.emit(det, now)
	}
	return len(dets)
}

// emit records telemetry and enqueues a detection, dropping the oldest
// pending one when the consumer lags (the broker's overflow policy).
func (q *Query) emit(det cep.Detection, now time.Time) {
	events := make([]*event.Event, len(det.Events))
	var newest time.Time
	for i, ue := range det.Events {
		events[i] = ue.Event
		if ue.At.After(newest) {
			newest = ue.At
		}
	}
	if !newest.IsZero() {
		q.eng.detectHist.ObserveDuration(now.Sub(newest))
		q.eng.detectSLO.Observe(now.Sub(newest))
	}
	q.detections.Add(1)
	d := broker.QueryDetection{
		Query:       q.name,
		Probability: det.Probability,
		Events:      events,
		At:          now,
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	for {
		select {
		case q.ch <- d:
			return
		default:
			select {
			case <-q.ch:
				q.dropped.Add(1)
			default:
			}
		}
	}
}

func (q *Query) stats() QueryStats {
	st := QueryStats{
		Name:       q.name,
		Kind:       q.spec.Kind,
		Fed:        q.fed.Load(),
		Deduped:    q.deduped.Load(),
		Detections: q.detections.Load(),
		Dropped:    q.dropped.Load(),
	}
	if o, ok := q.pattern.(cep.Occupant); ok {
		st.Occupancy = o.Occupancy()
	}
	return st
}
