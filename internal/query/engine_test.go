package query

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/event"
	"thematicep/internal/telemetry"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

// exactMatcher scores 1 on exact predicate match, 0 otherwise.
func exactMatcher() broker.Matcher {
	return broker.MatchFunc(func(s *event.Subscription, e *event.Event) float64 {
		if event.ExactMatch(s, e) {
			return 1
		}
		return 0
	})
}

func typedEvent(id, typ string) *event.Event {
	return &event.Event{
		ID:    id,
		Theme: []string{"energy"},
		Tuples: []event.Tuple{
			{Attr: "type", Value: typ},
		},
	}
}

func typedSub(typ string) *event.Subscription {
	return &event.Subscription{
		Theme:      []string{"energy"},
		Predicates: []event.Predicate{{Attr: "type", Value: typ}},
	}
}

func countSpec(name string, window time.Duration, min float64) *broker.QuerySpec {
	return &broker.QuerySpec{
		Name:         name,
		Kind:         KindCount,
		Subscription: typedSub("spike"),
		Window:       window,
		MinExpected:  min,
		Steps:        []broker.QueryStep{{Attr: "type", Value: "spike"}},
	}
}

func recvDetection(t *testing.T, ch <-chan broker.QueryDetection) broker.QueryDetection {
	t.Helper()
	select {
	case d, ok := <-ch:
		if !ok {
			t.Fatal("detection channel closed")
		}
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for detection")
		return broker.QueryDetection{}
	}
}

func TestCountQueryDetectsBurst(t *testing.T) {
	b := broker.New(exactMatcher())
	defer b.Close()
	e := New(b, WithFlushInterval(-1))
	defer e.Close()

	q, err := e.Register(countSpec("burst", time.Minute, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Publish(typedEvent("", "spike")); err != nil {
			t.Fatal(err)
		}
	}
	d := recvDetection(t, q.C())
	if d.Query != "burst" || len(d.Events) != 3 || d.Probability != 1 {
		t.Errorf("detection = %+v", d)
	}
	st := e.Stats()
	if len(st) != 1 || st[0].Detections != 1 || st[0].Fed != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st[0].Occupancy != 3 {
		t.Errorf("occupancy = %d, want 3", st[0].Occupancy)
	}
}

func TestQueryOverWireEndToEnd(t *testing.T) {
	b := broker.New(exactMatcher())
	defer b.Close()
	e := New(b, WithFlushInterval(-1))
	defer e.Close()
	srv := broker.NewServer(b)
	srv.SetQueryRegistrar(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := broker.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	name, detections, err := c.Query(countSpec("wire-burst", time.Minute, 2))
	if err != nil {
		t.Fatal(err)
	}
	if name != "wire-burst" {
		t.Fatalf("name = %q", name)
	}
	// Duplicate names are rejected across the wire.
	if _, _, err := c.Query(countSpec("wire-burst", time.Minute, 2)); err == nil {
		t.Fatal("duplicate query accepted")
	}

	for i := 0; i < 2; i++ {
		if err := c.Publish(typedEvent("", "spike")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case d := <-detections:
		if d.Query != "wire-burst" || len(d.Events) != 2 {
			t.Errorf("detection = %+v", d)
		}
		if d.At.IsZero() {
			t.Error("detection At not carried over the wire")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for wire detection")
	}

	if err := c.UnregisterQuery("wire-burst"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Get("wire-burst"); ok {
		t.Error("query still registered after UnregisterQuery")
	}
	// The name is free again.
	if _, _, err := c.Query(countSpec("wire-burst", time.Minute, 2)); err != nil {
		t.Fatalf("re-register after unregister: %v", err)
	}
}

func TestConnTeardownClosesQueries(t *testing.T) {
	b := broker.New(exactMatcher())
	defer b.Close()
	e := New(b, WithFlushInterval(-1))
	defer e.Close()
	srv := broker.NewServer(b)
	srv.SetQueryRegistrar(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := broker.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(countSpec("ephemeral", time.Minute, 2)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := e.Get("ephemeral"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query survived connection teardown")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNegationFiresOnQuietStreamViaFlush(t *testing.T) {
	clk := telemetry.NewManual(t0)
	b := broker.New(exactMatcher(), broker.WithClock(clk))
	defer b.Close()
	e := New(b, WithClock(clk), WithFlushInterval(-1))
	defer e.Close()

	q, err := e.Register(&broker.QuerySpec{
		Name:         "no-shutdown",
		Kind:         KindNegation,
		Subscription: typedSub("overload"),
		Window:       time.Minute,
		Steps: []broker.QueryStep{
			{Attr: "type", Value: "overload"},
			{Attr: "type", Value: "shutdown"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(typedEvent("e1", "overload")); err != nil {
		t.Fatal(err)
	}
	// Wait for the feed goroutine to absorb the trigger.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats()[0].Fed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("trigger never fed")
		}
		time.Sleep(time.Millisecond)
	}
	// Quiet stream: nothing else arrives. Advancing the clock past the
	// window and flushing emits the absence detection.
	if n := e.FlushExpired(); n != 0 {
		t.Fatalf("premature flush emissions: %d", n)
	}
	clk.Advance(2 * time.Minute)
	if n := e.FlushExpired(); n != 1 {
		t.Fatalf("flush emissions = %d, want 1", n)
	}
	d := recvDetection(t, q.C())
	if d.Query != "no-shutdown" || len(d.Events) != 1 {
		t.Errorf("detection = %+v", d)
	}
}

func TestDetectionSLOObservesLatency(t *testing.T) {
	clk := telemetry.NewManual(t0)
	slo := telemetry.NewSLO("detection", 0.99, 10*time.Millisecond,
		telemetry.WithSLOClock(clk), telemetry.WithSLOWindow(time.Hour))
	b := broker.New(exactMatcher(), broker.WithClock(clk))
	defer b.Close()
	e := New(b, WithClock(clk), WithFlushInterval(-1), WithDetectionSLO(slo))
	defer e.Close()

	// A count query fires on the publish carrying its newest constituent:
	// zero manual time between admission and detection, a good observation.
	q, err := e.Register(countSpec("slo-burst", time.Minute, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Publish(typedEvent("", "spike")); err != nil {
			t.Fatal(err)
		}
	}
	recvDetection(t, q.C())
	if good, bad := sloWindow(t, slo); good != 1 || bad != 0 {
		t.Fatalf("after inline detection: good %d bad %d, want 1/0", good, bad)
	}

	// An absence detection on a quiet stream is emitted two minutes after
	// its trigger's admission — far past the 10ms threshold, a bad one.
	nq, err := e.Register(&broker.QuerySpec{
		Name:         "slo-quiet",
		Kind:         KindNegation,
		Subscription: typedSub("overload"),
		Window:       time.Minute,
		Steps: []broker.QueryStep{
			{Attr: "type", Value: "overload"},
			{Attr: "type", Value: "shutdown"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(typedEvent("e1", "overload")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fed(e, "slo-quiet") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("trigger never fed")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(2 * time.Minute)
	if n := e.FlushExpired(); n != 1 {
		t.Fatalf("flush emissions = %d, want 1", n)
	}
	recvDetection(t, nq.C())
	if good, bad := sloWindow(t, slo); good != 1 || bad != 1 {
		t.Fatalf("after late detection: good %d bad %d, want 1/1", good, bad)
	}
	if slo.BurnRate(slo.LongWindow()) <= 1 {
		t.Errorf("burn rate = %g, want > 1 with half the window bad", slo.BurnRate(slo.LongWindow()))
	}
}

func fed(e *Engine, name string) uint64 {
	for _, st := range e.Stats() {
		if st.Name == name {
			return st.Fed
		}
	}
	return 0
}

// sloWindow reads the SLO's window counters back through its exposition.
func sloWindow(t *testing.T, s *telemetry.SLO) (good, bad uint64) {
	t.Helper()
	var sb strings.Builder
	s.WriteMetrics(telemetry.NewExpo(&sb))
	fams, err := telemetry.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		for _, smp := range f.Samples {
			switch f.Name {
			case "thematicep_slo_window_good":
				good = uint64(smp.Value)
			case "thematicep_slo_window_bad":
				bad = uint64(smp.Value)
			}
		}
	}
	return good, bad
}

func TestTickerDrivesQuietStreamEmissions(t *testing.T) {
	b := broker.New(exactMatcher())
	defer b.Close()
	// Real clock, short window, fast ticker: no events after the trigger,
	// the ticker alone must fire the negation.
	e := New(b, WithFlushInterval(10*time.Millisecond))
	defer e.Close()

	q, err := e.Register(&broker.QuerySpec{
		Name:         "quiet",
		Kind:         KindNegation,
		Subscription: typedSub("overload"),
		Window:       30 * time.Millisecond,
		Steps: []broker.QueryStep{
			{Attr: "type", Value: "overload"},
			{Attr: "type", Value: "shutdown"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(typedEvent("e1", "overload")); err != nil {
		t.Fatal(err)
	}
	d := recvDetection(t, q.C())
	if d.Query != "quiet" {
		t.Errorf("detection = %+v", d)
	}
}

func TestDrainFlushesPendingWindows(t *testing.T) {
	b := broker.New(exactMatcher())
	defer b.Close()
	e := New(b, WithFlushInterval(-1))
	defer e.Close()
	b.OnDrain(e.Drain)

	q, err := e.Register(&broker.QuerySpec{
		Name:         "pending",
		Kind:         KindNegation,
		Subscription: typedSub("overload"),
		Window:       time.Hour, // far beyond the test's lifetime
		Steps: []broker.QueryStep{
			{Attr: "type", Value: "overload"},
			{Attr: "type", Value: "shutdown"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(typedEvent("e1", "overload")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats()[0].Fed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("trigger never fed")
		}
		time.Sleep(time.Millisecond)
	}

	// Drain must force the hour-long window closed and emit the pending
	// absence before shutdown completes.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	d := recvDetection(t, q.C())
	if d.Query != "pending" || len(d.Events) != 1 {
		t.Errorf("detection = %+v", d)
	}
}

// stubBackend hands the test direct control of the delivery channel.
type stubBackend struct {
	mu   sync.Mutex
	subs []*stubSub
}

type stubSub struct {
	id string
	ch chan broker.Delivery

	mu     sync.Mutex
	closed bool
}

func (s *stubSub) ID() string                { return s.id }
func (s *stubSub) C() <-chan broker.Delivery { return s.ch }
func (s *stubSub) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

func (b *stubBackend) Publish(e *event.Event) error { return nil }

func (b *stubBackend) SubscribeHandle(sub *event.Subscription, opts ...broker.SubscribeOption) (broker.SubHandle, error) {
	s := &stubSub{id: "stub", ch: make(chan broker.Delivery, 64)}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	return s, nil
}

func TestEngineDedupsEventIDs(t *testing.T) {
	be := &stubBackend{}
	e := New(be, WithFlushInterval(-1))
	defer e.Close()

	q, err := e.Register(countSpec("dedup", time.Minute, 10))
	if err != nil {
		t.Fatal(err)
	}
	_ = q
	sub := be.subs[0]
	ev := typedEvent("dup-1", "spike")
	for i := 0; i < 3; i++ {
		sub.ch <- broker.Delivery{Event: ev, SubscriptionID: "stub", Score: 1, At: t0}
	}
	sub.ch <- broker.Delivery{Event: typedEvent("other", "spike"), SubscriptionID: "stub", Score: 1, At: t0}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := e.Stats()[0]
		if st.Fed+st.Deduped == 4 {
			if st.Fed != 2 || st.Deduped != 2 {
				t.Fatalf("fed = %d, deduped = %d; want 2, 2", st.Fed, st.Deduped)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRegisterValidation(t *testing.T) {
	be := &stubBackend{}
	e := New(be, WithFlushInterval(-1))
	defer e.Close()

	cases := []*broker.QuerySpec{
		nil,
		{Kind: KindCount, Window: time.Minute, Subscription: typedSub("x")},                                           // no name
		{Name: "w", Kind: KindCount, Subscription: typedSub("x")},                                                     // no window
		{Name: "s", Kind: KindCount, Window: time.Minute},                                                             // no subscription
		{Name: "k", Kind: "bogus", Window: time.Minute, Subscription: typedSub("x")},                                  // bad kind
		{Name: "n", Kind: KindNegation, Window: time.Minute, Subscription: typedSub("x")},                             // negation arity
		{Name: "q", Kind: KindSequence, Window: time.Minute, Subscription: typedSub("x")},                             // empty sequence
		{Name: "e", Kind: KindCount, Window: time.Minute, Subscription: typedSub("x"), Steps: []broker.QueryStep{{}}}, // empty attr
	}
	for i, spec := range cases {
		if _, err := e.Register(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}

	if _, err := e.Register(countSpec("dup", time.Minute, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(countSpec("dup", time.Minute, 1)); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestMetricsExposition(t *testing.T) {
	b := broker.New(exactMatcher())
	defer b.Close()
	e := New(b, WithFlushInterval(-1))
	defer e.Close()
	if _, err := e.Register(countSpec("expo", time.Minute, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		b.Publish(typedEvent("", "spike"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats()[0].Detections == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no detection")
		}
		time.Sleep(time.Millisecond)
	}

	var sb strings.Builder
	expo := telemetry.NewExpo(&sb)
	e.WriteMetrics(expo)
	out := sb.String()
	for _, want := range []string{
		`thematicep_query_active 1`,
		`thematicep_query_detections_total{query="expo"} 1`,
		`thematicep_query_events_total{query="expo"} 2`,
		`thematicep_query_window_events{query="expo"} 2`,
		"thematicep_query_detect_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := telemetry.Lint(strings.NewReader(out)); err != nil {
		t.Errorf("exposition lint: %v", err)
	}
}

func BenchmarkQueryObserve(b *testing.B) {
	be := &stubBackend{}
	e := New(be, WithFlushInterval(-1))
	defer e.Close()
	q, err := e.Register(countSpec("bench", time.Minute, 1e12))
	if err != nil {
		b.Fatal(err)
	}
	// Non-matching type: the pattern evicts and recomputes but never
	// accumulates, so the benchmark measures the steady observe path.
	ev := typedEvent("", "other")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.observe(broker.Delivery{Event: ev, SubscriptionID: "stub", Score: 1, At: t0})
	}
}
