package query

import (
	"sync"
	"testing"
	"time"

	"thematicep/internal/broker"
	"thematicep/internal/event"
)

// recordingJournal implements both broker.Journal and query.Journal,
// mirroring how wal.Log is wired into the daemon.
type recordingJournal struct {
	mu         sync.Mutex
	subs       []string
	registered []string
	unreg      []string
}

func (j *recordingJournal) Subscribed(id string, sub *event.Subscription) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs = append(j.subs, id)
}

func (j *recordingJournal) Unsubscribed(id string) {}

func (j *recordingJournal) QueryRegistered(spec *broker.QuerySpec) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.registered = append(j.registered, spec.Name)
}

func (j *recordingJournal) QueryUnregistered(name string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.unreg = append(j.unreg, name)
}

func (j *recordingJournal) snapshot() (subs, registered, unreg []string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.subs...),
		append([]string(nil), j.registered...),
		append([]string(nil), j.unreg...)
}

// Register journals the query spec — and ONLY the spec: the feeding
// subscription is ephemeral, because replaying the query re-creates its
// feed. Journaling both would leak an orphan subscription every restart.
func TestEngineJournalsRegistration(t *testing.T) {
	j := &recordingJournal{}
	b := broker.New(exactMatcher(), broker.WithJournal(j))
	defer b.Close()
	e := New(b, WithJournal(j))
	defer e.Close()

	q, err := e.Register(countSpec("spikes", time.Second, 1))
	if err != nil {
		t.Fatal(err)
	}
	subs, registered, unreg := j.snapshot()
	if len(registered) != 1 || registered[0] != "spikes" {
		t.Fatalf("journal saw query registrations %v, want [spikes]", registered)
	}
	if len(subs) != 0 {
		t.Fatalf("the query feed was journaled as a plain subscription: %v", subs)
	}
	if len(unreg) != 0 {
		t.Fatalf("unexpected unregistrations %v", unreg)
	}

	// A client-initiated Close is durable intent: journaled.
	q.Close()
	_, _, unreg = j.snapshot()
	if len(unreg) != 1 || unreg[0] != "spikes" {
		t.Fatalf("journal saw unregistrations %v, want [spikes]", unreg)
	}
}

// Engine shutdown is not unregistration: a daemon restart must recover
// every live query, so Close leaves the journal untouched.
func TestEngineCloseDoesNotEraseJournal(t *testing.T) {
	j := &recordingJournal{}
	b := broker.New(exactMatcher())
	defer b.Close()
	e := New(b, WithJournal(j))

	if _, err := e.Register(countSpec("spikes", time.Second, 1)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	_, registered, unreg := j.snapshot()
	if len(registered) != 1 {
		t.Fatalf("registrations %v, want [spikes]", registered)
	}
	if len(unreg) != 0 {
		t.Fatalf("engine close journaled unregistrations %v — restart would lose the query", unreg)
	}
}

// A failed Register must not reach the journal.
func TestEngineJournalSkipsFailedRegister(t *testing.T) {
	j := &recordingJournal{}
	b := broker.New(exactMatcher())
	defer b.Close()
	e := New(b, WithJournal(j))
	defer e.Close()

	if _, err := e.Register(countSpec("dup", time.Second, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register(countSpec("dup", time.Second, 1)); err == nil {
		t.Fatal("duplicate register succeeded")
	}
	_, registered, _ := j.snapshot()
	if len(registered) != 1 {
		t.Fatalf("failed register reached the journal: %v", registered)
	}
}
