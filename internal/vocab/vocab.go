// Package vocab embeds the vocabulary the reproduction is built from:
//
//   - the six EuroVoc domains the paper's evaluation uses (§5.2.2):
//     transport, environment, energy, geography, education and
//     communications, social questions — each with concept clusters
//     (synonyms + related terms) and micro-thesaurus "top terms";
//   - the real-world datasets the seed-event generator combines (§5.2.1):
//     Table 3 sensor capabilities, BLUED-like appliances, car brands,
//     DERI-building-like rooms, and SmartSantander/Galway locations.
//
// The same clusters drive three substrates so that terms are consistently
// in-vocabulary, exactly as EuroVoc terms are in Wikipedia:
//
//   - internal/corpus generates documents from the clusters (ESA substrate);
//   - internal/thesaurus exposes clusters as synonym/related lookups
//     (semantic expansion + ground truth);
//   - internal/workload draws seed-event attributes and values from the
//     datasets.
//
// Several surface terms deliberately belong to concepts in more than one
// domain ("park", "coach", "station", "cell", "current", "plant", ...).
// These homographs are what make the non-thematic matcher err and what
// thematic projection disambiguates — the paper's central effect.
package vocab

// A Concept is a cluster of terms with (approximately) one meaning inside
// one domain. Synonyms are near-equivalent surface forms — the semantic
// expansion transformation (§5.2.2) replaces a term with one of these.
// Related terms are associated but not substitutable; they co-occur with the
// concept in corpus documents and serve as distractors.
type Concept struct {
	Label    string
	Synonyms []string
	Related  []string
}

// Terms returns the label and all synonyms.
func (c Concept) Terms() []string {
	out := make([]string, 0, 1+len(c.Synonyms))
	out = append(out, c.Label)
	out = append(out, c.Synonyms...)
	return out
}

// A Domain is a micro-thesaurus: a named set of concepts plus the EuroVoc
// style "top terms" used as theme-tag candidates (§5.2.4) and context terms
// that flavor the domain's corpus documents.
type Domain struct {
	Name     string
	TopTerms []string
	Context  []string
	Concepts []Concept
}

// HubTokens are domain-jargon tokens that are near-ubiquitous inside the
// evaluation domains' documents (sensor talk is full of levels, rates,
// readings) but only scattered elsewhere. In the full space they bridge
// unrelated multi-word terms that share them; inside a thematic basis the
// recomputed idf of Algorithm 1 suppresses them — the projection's
// precision mechanism.
func HubTokens() []string {
	return []string{
		"level", "unit", "rate", "reading", "measurement", "value",
		"index", "average", "peak", "monitor", "sample", "scale", "range",
	}
}

// FrameTokens are the frame words of event vocabulary ("increased X event"):
// in a general corpus they are near-stopwords, appearing in nearly every
// document regardless of topic. The corpus generator sprinkles them
// uniformly so their idf is close to zero everywhere and they cannot
// dominate type-value vectors (which they would as rare tokens).
func FrameTokens() []string {
	return []string{"event", "increased", "decreased", "high", "low"}
}

// IsEvaluationDomain reports whether name is one of the six evaluation
// domains (as opposed to a distractor domain).
func IsEvaluationDomain(name string) bool {
	for _, d := range DomainNames() {
		if d == name {
			return true
		}
	}
	return false
}

// DomainNames lists the six evaluation domains in canonical order.
func DomainNames() []string {
	return []string{
		"transport",
		"environment",
		"energy",
		"geography",
		"education and communications",
		"social questions",
	}
}

// Domains returns the six evaluation domains. The returned slice and its
// contents must be treated as read-only; callers that need to mutate should
// copy.
func Domains() []Domain {
	return domains
}

// DomainByName returns the domain with the given name.
func DomainByName(name string) (Domain, bool) {
	for _, d := range domains {
		if d.Name == name {
			return d, true
		}
	}
	return Domain{}, false
}

var domains = []Domain{
	{
		Name: "transport",
		TopTerms: []string{
			"land transport", "road traffic", "public transport",
			"transport policy", "vehicle fleet", "urban mobility",
			"freight transport", "transport infrastructure",
		},
		Context: []string{
			"road", "highway", "driver", "journey", "route", "commute",
			"wheel", "engine", "fuel", "lane", "junction", "intersection",
			"timetable", "passenger", "cargo", "logistics", "mobility",
		},
		Concepts: []Concept{
			{
				Label:    "parking",
				Synonyms: []string{"parking space", "car park", "parking lot", "garage spot", "parking bay", "park"},
				Related:  []string{"kerb", "meter", "parking garage", "valet"},
			},
			{
				Label:    "vehicle",
				Synonyms: []string{"car", "automobile", "motorcar", "motor vehicle"},
				Related:  []string{"chassis", "sedan", "hatchback", "registration"},
			},
			{
				Label:    "speed",
				Synonyms: []string{"velocity", "pace", "travel speed", "driving speed"},
				Related:  []string{"speed limit", "radar", "acceleration", "odometer"},
			},
			{
				Label:    "traffic",
				Synonyms: []string{"street traffic", "traffic flow", "congestion", "traffic volume"},
				Related:  []string{"rush hour", "gridlock", "traffic jam", "detour"},
			},
			{
				Label:    "bus",
				Synonyms: []string{"coach", "motorcoach", "omnibus", "transit bus"},
				Related:  []string{"bus stop", "bus lane", "fare", "conductor"},
			},
			{
				Label:    "station",
				Synonyms: []string{"terminal", "depot", "transit station", "interchange"},
				Related:  []string{"platform", "concourse", "ticket office", "arrival"},
			},
			{
				Label:    "bicycle",
				Synonyms: []string{"bike", "cycle", "pushbike", "two wheeler"},
				Related:  []string{"cycle lane", "helmet", "pedal", "saddle"},
			},
			{
				Label:    "truck",
				Synonyms: []string{"lorry", "heavy goods vehicle", "freight truck", "hgv"},
				Related:  []string{"trailer", "haulage", "payload", "axle"},
			},
			{
				Label:    "tram",
				Synonyms: []string{"streetcar", "trolley", "light rail", "tramway"},
				Related:  []string{"overhead line", "track", "stop", "carriage"},
			},
			{
				Label:    "traffic light",
				Synonyms: []string{"traffic signal", "stoplight", "signal light", "semaphore", "light"},
				Related:  []string{"amber", "crossing", "pedestrian signal", "phase"},
			},
			{
				Label:    "road network",
				Synonyms: []string{"transport network", "street network", "highway network"},
				Related:  []string{"ring road", "arterial", "bypass", "roundabout"},
			},
			{
				Label:    "ferry",
				Synonyms: []string{"boat service", "water taxi", "car ferry"},
				Related:  []string{"harbour", "pier", "crossing time", "deck"},
			},
			{
				Label:    "railway",
				Synonyms: []string{"railroad", "rail transport", "train service"},
				Related:  []string{"locomotive", "sleeper", "signal box", "gauge"},
			},
			{
				Label:    "driver assistance",
				Synonyms: []string{"assisted driving", "driving aid", "autopilot assistance"},
				Related:  []string{"lane keeping", "cruise control", "collision warning"},
			},
			{
				Label:    "journey time",
				Synonyms: []string{"travel time", "trip duration", "transit time"},
				Related:  []string{"delay", "schedule", "estimated arrival"},
			},
		},
	},
	{
		Name: "environment",
		TopTerms: []string{
			"protection of nature", "environmental monitoring", "pollution control",
			"climate observation", "natural environment", "air quality",
			"water management", "environmental policy",
		},
		Context: []string{
			"habitat", "ecosystem", "emission", "pollutant", "weather",
			"forecast", "sensor reading", "sampling", "conservation",
			"biodiversity", "meteorology", "atmosphere", "season", "storm",
		},
		Concepts: []Concept{
			{
				Label:    "temperature",
				Synonyms: []string{"air temperature", "thermal reading", "heat level", "ambient temperature"},
				Related:  []string{"thermometer", "celsius", "heatwave", "frost"},
			},
			{
				Label:    "ground temperature",
				Synonyms: []string{"soil temperature", "surface temperature", "earth temperature"},
				Related:  []string{"permafrost", "soil probe", "thermal gradient"},
			},
			{
				Label:    "relative humidity",
				Synonyms: []string{"humidity", "moisture level", "air moisture", "dampness"},
				Related:  []string{"dew point", "hygrometer", "condensation"},
			},
			{
				Label:    "rainfall",
				Synonyms: []string{"precipitation", "rain", "rainfall amount", "pluviometry"},
				Related:  []string{"rain gauge", "drizzle", "downpour", "monsoon"},
			},
			{
				Label:    "wind speed",
				Synonyms: []string{"wind velocity", "gust speed", "wind strength"},
				Related:  []string{"anemometer", "gale", "breeze", "beaufort"},
			},
			{
				Label:    "wind direction",
				Synonyms: []string{"wind bearing", "wind heading", "wind orientation"},
				Related:  []string{"wind vane", "compass", "northerly", "prevailing wind"},
			},
			{
				Label:    "atmospheric pressure",
				Synonyms: []string{"barometric pressure", "air pressure", "pressure reading"},
				Related:  []string{"barometer", "isobar", "anticyclone", "millibar"},
			},
			{
				Label:    "ozone",
				Synonyms: []string{"ozone level", "o3", "ozone concentration"},
				Related:  []string{"smog", "ultraviolet", "ozone layer", "photochemical"},
			},
			{
				Label:    "particles",
				Synonyms: []string{"particulate matter", "particulates", "pm10", "fine dust"},
				Related:  []string{"aerosol", "soot", "dust", "filtration"},
			},
			{
				Label:    "no2",
				Synonyms: []string{"nitrogen dioxide", "nox", "nitrogen oxide"},
				Related:  []string{"exhaust gas", "combustion byproduct", "acid rain"},
			},
			{
				Label:    "co",
				Synonyms: []string{"carbon monoxide", "co level", "carbon monoxide concentration"},
				Related:  []string{"flue", "incomplete combustion", "detector alarm"},
			},
			{
				Label:    "noise",
				Synonyms: []string{"sound level", "noise level", "acoustic level", "din"},
				Related:  []string{"decibel", "soundscape", "noise abatement", "quiet zone"},
			},
			{
				Label:    "water flow",
				Synonyms: []string{"flow rate", "water discharge", "stream flow"},
				Related:  []string{"flume", "weir", "catchment", "flood"},
			},
			{
				Label:    "soil moisture tension",
				Synonyms: []string{"soil moisture", "soil water tension", "soil wetness"},
				Related:  []string{"tensiometer", "irrigation", "field capacity", "drought"},
			},
			{
				Label:    "solar radiation",
				Synonyms: []string{"sunlight", "irradiance", "insolation", "solar exposure"},
				Related:  []string{"pyranometer", "cloud cover", "uv index", "daylight"},
			},
			{
				Label:    "radiation par",
				Synonyms: []string{"photosynthetically active radiation", "par level", "par radiation"},
				Related:  []string{"canopy", "photosynthesis", "quantum sensor", "leaf area"},
			},
			{
				Label:    "vegetation",
				Synonyms: []string{"plant", "flora", "plant cover", "greenery"},
				Related:  []string{"leaf", "root", "growth", "botany"},
			},
			{
				Label:    "water current",
				Synonyms: []string{"current", "river current", "tidal current"},
				Related:  []string{"tide", "estuary", "drift", "undertow"},
			},
		},
	},
	{
		Name: "energy",
		TopTerms: []string{
			"energy policy", "electrical energy", "energy consumption monitoring",
			"power generation", "energy efficiency", "soft energy",
			"energy grid", "fuel technology",
		},
		Context: []string{
			"grid", "utility", "smart meter", "load", "demand", "supply",
			"transformer", "substation", "billing", "peak demand", "watt",
			"renewable", "insulation", "efficiency rating", "outage",
		},
		Concepts: []Concept{
			{
				Label:    "energy consumption",
				Synonyms: []string{"energy usage", "electricity usage", "power consumption", "electricity consumption", "energy use"},
				Related:  []string{"consumption peak", "baseline load", "meter reading", "demand response"},
			},
			{
				Label:    "kilowatt hour",
				Synonyms: []string{"kwh", "kilowatt hours", "unit of electricity"},
				Related:  []string{"megawatt", "joule", "tariff", "billing unit"},
			},
			{
				Label:    "power station",
				Synonyms: []string{"power plant", "generating station", "electricity plant"},
				Related:  []string{"turbine", "generator", "cooling tower", "boiler"},
			},
			{
				Label:    "electric current",
				Synonyms: []string{"current", "amperage", "electrical current"},
				Related:  []string{"ampere", "circuit", "conductor", "resistance"},
			},
			{
				Label:    "voltage",
				Synonyms: []string{"electric potential", "volt level", "potential difference"},
				Related:  []string{"volt", "surge", "regulator", "transformer tap"},
			},
			{
				Label:    "battery",
				Synonyms: []string{"battery cell", "accumulator", "storage cell", "cell"},
				Related:  []string{"charge cycle", "lithium", "anode", "cathode"},
			},
			{
				Label:    "charging",
				Synonyms: []string{"charge", "battery charging", "recharge"},
				Related:  []string{"charger", "charging point", "fast charge", "plug"},
			},
			{
				Label:    "street lighting",
				Synonyms: []string{"street lights", "public lighting", "streetlamp", "street lamp"},
				Related:  []string{"lamp post", "luminaire", "dimming", "dusk"},
			},
			{
				Label:    "light",
				Synonyms: []string{"illumination", "lighting", "light level", "luminosity"},
				Related:  []string{"lux", "bulb", "led", "brightness"},
			},
			{
				Label:    "consumption peak",
				Synonyms: []string{"peak usage", "peak demand", "usage peak", "peak load"},
				Related:  []string{"load curve", "peak hour", "load shedding"},
			},
			{
				Label:    "solar power",
				Synonyms: []string{"photovoltaic power", "solar energy", "pv generation"},
				Related:  []string{"solar panel", "inverter", "feed in", "array"},
			},
			{
				Label:    "wind power",
				Synonyms: []string{"wind energy", "wind generation", "eolic power"},
				Related:  []string{"wind farm", "rotor", "nacelle", "capacity factor"},
			},
			{
				Label:    "radiation",
				Synonyms: []string{"nuclear radiation", "ionizing radiation", "radioactivity"},
				Related:  []string{"reactor", "isotope", "shielding", "dosimeter"},
			},
			{
				Label:    "heating",
				Synonyms: []string{"space heating", "heat supply", "thermal comfort"},
				Related:  []string{"radiator", "boiler room", "thermostat", "district heating"},
			},
			{
				Label:    "fuel",
				Synonyms: []string{"fuel supply", "combustible", "motor fuel"},
				Related:  []string{"diesel", "petrol", "refinery", "octane"},
			},
			{
				Label:    "appliance",
				Synonyms: []string{"device", "household appliance", "electrical appliance", "electric device"},
				Related:  []string{"plug load", "socket", "standby", "rating plate"},
			},
			{
				Label:    "energy saving",
				Synonyms: []string{"energy conservation", "power saving", "energy reduction"},
				Related:  []string{"retrofit", "standby loss", "audit", "efficiency measure"},
			},
		},
	},
	{
		Name: "geography",
		TopTerms: []string{
			"regions of europe", "urban geography", "administrative geography",
			"city planning", "territorial division", "settlement geography",
			"geographic location", "regional policy",
		},
		Context: []string{
			"map", "boundary", "district", "province", "coastline", "terrain",
			"latitude", "longitude", "census", "municipality", "landmark",
			"neighbourhood", "suburb", "postcode",
		},
		Concepts: []Concept{
			{
				Label:    "city",
				Synonyms: []string{"urban area", "town", "municipality", "metropolis"},
				Related:  []string{"mayor", "city hall", "downtown", "ward"},
			},
			{
				Label:    "country",
				Synonyms: []string{"nation", "state", "sovereign state", "land"},
				Related:  []string{"border", "capital", "anthem", "territory"},
			},
			{
				Label:    "continent",
				Synonyms: []string{"continental region", "landmass", "world region"},
				Related:  []string{"hemisphere", "tectonic plate", "subcontinent"},
			},
			{
				Label:    "ireland",
				Synonyms: []string{"eire", "republic of ireland", "irish republic"},
				Related:  []string{"dublin", "shamrock", "emerald isle", "gaelic"},
			},
			{
				Label:    "galway",
				Synonyms: []string{"galway city", "city of galway", "galway urban area"},
				Related:  []string{"corrib", "claddagh", "connacht", "salthill"},
			},
			{
				Label:    "santander",
				Synonyms: []string{"santander city", "city of santander"},
				Related:  []string{"cantabria", "bay of biscay", "sardinero"},
			},
			{
				Label:    "europe",
				Synonyms: []string{"european countries", "european continent", "european region"},
				Related:  []string{"european union", "eurozone", "schengen"},
			},
			{
				Label:    "zone",
				Synonyms: []string{"area", "sector", "precinct", "quarter"},
				Related:  []string{"zoning", "perimeter", "boundary line"},
			},
			{
				Label:    "building",
				Synonyms: []string{"premises", "edifice", "structure", "property"},
				Related:  []string{"facade", "storey", "lobby", "architect"},
			},
			{
				Label:    "park",
				Synonyms: []string{"green space", "public garden", "city park", "recreation ground"},
				Related:  []string{"lawn", "bench", "playground", "bandstand"},
			},
			{
				Label:    "river",
				Synonyms: []string{"waterway", "watercourse", "stream"},
				Related:  []string{"bank", "bridge", "delta", "tributary"},
			},
			{
				Label:    "coast",
				Synonyms: []string{"shoreline", "seaside", "seashore", "littoral"},
				Related:  []string{"beach", "cliff", "dune", "promenade"},
			},
			{
				Label:    "region",
				Synonyms: []string{"province", "county", "administrative region"},
				Related:  []string{"council", "jurisdiction", "prefecture"},
			},
			{
				Label:    "street",
				Synonyms: []string{"road", "avenue", "boulevard", "thoroughfare"},
				Related:  []string{"pavement", "street name", "alley", "crossroads"},
			},
		},
	},
	{
		Name: "education and communications",
		TopTerms: []string{
			"information technology", "communications systems", "teaching",
			"data processing", "documentation", "education policy",
			"computer systems", "information networks",
		},
		Context: []string{
			"curriculum", "lecture", "laboratory", "protocol", "packet",
			"server", "software", "hardware", "database", "archive",
			"broadcast", "publication", "literacy", "campus",
		},
		Concepts: []Concept{
			{
				Label:    "cpu usage",
				Synonyms: []string{"processor usage", "cpu load", "processor load", "cpu utilization"},
				Related:  []string{"core", "clock speed", "scheduler", "idle time"},
			},
			{
				Label:    "memory usage",
				Synonyms: []string{"ram usage", "memory consumption", "memory load", "ram consumption"},
				Related:  []string{"heap", "swap", "allocation", "cache line"},
			},
			{
				Label:    "computer",
				Synonyms: []string{"laptop", "workstation", "desktop computer", "notebook computer", "pc"},
				Related:  []string{"keyboard", "monitor", "operating system", "motherboard"},
			},
			{
				Label:    "network",
				Synonyms: []string{"computer network", "data network", "internet network"},
				Related:  []string{"router", "switch", "ethernet", "topology"},
			},
			{
				Label:    "network traffic",
				Synonyms: []string{"data traffic", "packet traffic", "network load"},
				Related:  []string{"throughput", "latency", "bandwidth", "congestion window"},
			},
			{
				Label:    "mobile phone",
				Synonyms: []string{"cell phone", "cellphone", "smartphone", "handset", "cell"},
				Related:  []string{"sim card", "roaming", "base station", "antenna"},
			},
			{
				Label:    "signal noise",
				Synonyms: []string{"interference", "static", "signal distortion", "noise"},
				Related:  []string{"signal to noise", "attenuation", "crosstalk"},
			},
			{
				Label:    "school",
				Synonyms: []string{"educational institution", "academy", "college"},
				Related:  []string{"classroom", "teacher", "pupil", "enrolment"},
			},
			{
				Label:    "lesson",
				Synonyms: []string{"class", "course", "lecture session", "tutorial"},
				Related:  []string{"syllabus", "homework", "assessment", "seminar"},
			},
			{
				Label:    "tutor",
				Synonyms: []string{"coach", "instructor", "mentor", "trainer"},
				Related:  []string{"tuition", "mentoring", "office hours"},
			},
			{
				Label:    "examination",
				Synonyms: []string{"exam", "test", "assessment exam"},
				Related:  []string{"grade", "marking", "invigilator", "transcript"},
			},
			{
				Label:    "data storage",
				Synonyms: []string{"memory", "storage", "disk storage", "data store"},
				Related:  []string{"gigabyte", "filesystem", "backup", "archive copy"},
			},
			{
				Label:    "broadcasting",
				Synonyms: []string{"radio broadcasting", "transmission", "radio station"},
				Related:  []string{"frequency", "studio", "listener", "airwave"},
			},
			{
				Label:    "bandwidth",
				Synonyms: []string{"data rate", "transfer speed", "link capacity", "speed"},
				Related:  []string{"megabit", "throughput cap", "line speed"},
			},
			{
				Label:    "sensor node",
				Synonyms: []string{"sensor device", "iot node", "smart sensor", "sensing device"},
				Related:  []string{"gateway", "firmware", "telemetry", "mote"},
			},
		},
	},
	{
		Name: "social questions",
		TopTerms: []string{
			"social policy", "quality of living", "public hygiene",
			"demography", "social welfare", "housing policy",
			"community life", "consumer protection",
		},
		Context: []string{
			"household", "citizen", "community", "wellbeing", "survey",
			"benefit", "care", "volunteer", "charity", "inequality",
			"population", "family", "neighbour", "civic",
		},
		Concepts: []Concept{
			{
				Label:    "household",
				Synonyms: []string{"home", "dwelling", "residence", "family unit"},
				Related:  []string{"tenancy", "occupant", "utility bill", "rent"},
			},
			{
				Label:    "social class",
				Synonyms: []string{"class", "social stratum", "socioeconomic group"},
				Related:  []string{"income bracket", "mobility ladder", "status"},
			},
			{
				Label:    "fee",
				Synonyms: []string{"charge", "tariff", "levy", "service charge"},
				Related:  []string{"invoice", "payment", "surcharge", "billing dispute"},
			},
			{
				Label:    "public health",
				Synonyms: []string{"community health", "population health", "health protection"},
				Related:  []string{"clinic", "vaccination", "epidemiology", "screening"},
			},
			{
				Label:    "wellbeing",
				Synonyms: []string{"welfare", "life quality", "life satisfaction"},
				Related:  []string{"happiness index", "stress", "leisure", "work life balance"},
			},
			{
				Label:    "housing",
				Synonyms: []string{"accommodation", "dwelling stock", "residential housing"},
				Related:  []string{"landlord", "mortgage", "social housing", "eviction"},
			},
			{
				Label:    "pressure",
				Synonyms: []string{"social pressure", "peer pressure", "public pressure"},
				Related:  []string{"lobbying", "opinion", "campaign", "petition"},
			},
			{
				Label:    "safety",
				Synonyms: []string{"public safety", "personal safety", "security of citizens"},
				Related:  []string{"patrol", "emergency call", "hazard", "first aid"},
			},
			{
				Label:    "employment",
				Synonyms: []string{"work", "occupation", "labour"},
				Related:  []string{"wage", "contract", "unemployment", "workforce"},
			},
			{
				Label:    "consumer",
				Synonyms: []string{"customer", "end user", "purchaser"},
				Related:  []string{"complaint", "refund", "warranty", "retail"},
			},
			{
				Label:    "elderly care",
				Synonyms: []string{"care of the elderly", "senior care", "aged care"},
				Related:  []string{"care home", "pension", "assisted living", "carer"},
			},
			{
				Label:    "noise complaint",
				Synonyms: []string{"noise nuisance", "noise grievance", "disturbance report"},
				Related:  []string{"night time", "neighbour dispute", "enforcement"},
			},
		},
	},
}
