package vocab

// SensorCapabilities is the paper's Table 3 verbatim: the sensing
// capabilities of SmartSantander and Linked Energy Intelligence sensors used
// to synthesize seed events (§5.2.1).
func SensorCapabilities() []string {
	return []string{
		"solar radiation", "particles", "speed", "wind direction",
		"wind speed", "temperature", "water flow", "atmospheric pressure",
		"noise", "ozone", "rainfall", "parking", "radiation par", "co",
		"ground temperature", "light", "no2", "soil moisture tension",
		"relative humidity", "energy consumption", "cpu usage",
		"memory usage",
	}
}

// Appliances is a BLUED-like set of indoor appliance platforms (§5.2.1).
func Appliances() []string {
	return []string{
		"computer", "laptop", "desktop computer", "monitor", "printer",
		"refrigerator", "freezer", "microwave", "kettle", "toaster",
		"washing machine", "tumble dryer", "dishwasher", "television",
		"air conditioner", "space heater", "iron", "hair dryer",
		"vacuum cleaner", "coffee maker", "lamp", "projector", "router",
		"server rack",
	}
}

// CarBrands is a Yahoo!-directory-like set of car makes used for vehicle
// mobile sensor platforms (§5.2.1).
func CarBrands() []string {
	return []string{
		"toyota", "ford", "volkswagen", "renault", "peugeot", "fiat",
		"opel", "nissan", "honda", "hyundai", "kia", "skoda", "seat",
		"citroen", "volvo", "bmw", "audi", "mercedes", "mazda", "suzuki",
	}
}

// Rooms is a DERI-building-like set of indoor locations (§5.2.1).
func Rooms() []string {
	return []string{
		"room 101", "room 102", "room 103", "room 110", "room 112",
		"room 201", "room 202", "room 204", "room 210", "room 212",
		"room 301", "room 302", "meeting room a", "meeting room b",
		"kitchen", "canteen", "lobby", "server room", "print room",
		"lecture hall",
	}
}

// Desks is a set of desk identifiers inside rooms.
func Desks() []string {
	return []string{
		"desk 101a", "desk 101b", "desk 112a", "desk 112b", "desk 112c",
		"desk 201a", "desk 204d", "desk 210a", "desk 301c", "desk 302b",
	}
}

// Floors is a set of floor identifiers.
func Floors() []string {
	return []string{
		"ground floor", "first floor", "second floor", "third floor",
		"basement",
	}
}

// Zones is a set of site-level zones.
func Zones() []string {
	return []string{"building", "campus", "car park", "courtyard", "rooftop"}
}

// Cities lists the geographic deployment cities (SmartSantander sites plus
// Galway, §5.2.1).
func Cities() []string {
	return []string{"galway", "santander", "guildford", "lubeck", "belgrade"}
}

// Countries lists deployment countries.
func Countries() []string {
	return []string{"ireland", "spain", "united kingdom", "germany", "serbia"}
}

// Continents lists deployment continents.
func Continents() []string {
	return []string{"europe"}
}

// Streets lists street-level deployment locations.
func Streets() []string {
	return []string{
		"shop street", "quay street", "eyre square", "salthill promenade",
		"paseo de pereda", "calle alta", "university road", "dock road",
	}
}

// Units maps a sensor capability to its measurement unit term.
func Units() map[string]string {
	return map[string]string{
		"solar radiation":       "watt per square meter",
		"particles":             "microgram per cubic meter",
		"speed":                 "kilometer per hour",
		"wind direction":        "degree",
		"wind speed":            "meter per second",
		"temperature":           "celsius degree",
		"water flow":            "liter per second",
		"atmospheric pressure":  "hectopascal",
		"noise":                 "decibel",
		"ozone":                 "microgram per cubic meter",
		"rainfall":              "millimeter",
		"parking":               "free spots",
		"radiation par":         "micromole per square meter",
		"co":                    "milligram per cubic meter",
		"ground temperature":    "celsius degree",
		"light":                 "lux",
		"no2":                   "microgram per cubic meter",
		"soil moisture tension": "kilopascal",
		"relative humidity":     "percent",
		"energy consumption":    "kilowatt hour",
		"cpu usage":             "percent",
		"memory usage":          "megabyte",
	}
}

// EventTypeFor returns the event-type term synthesized for a sensor
// capability, e.g. "increased energy consumption event".
func EventTypeFor(capability, trend string) string {
	return trend + " " + capability + " event"
}

// Trends lists the trend qualifiers used to form event types.
func Trends() []string {
	return []string{"increased", "decreased", "high", "low"}
}
