package vocab

// DistractorDomains returns domains that are part of the corpus but NOT of
// the evaluation's six EuroVoc micro-thesauri: their top terms never enter
// the theme-tag pool and their documents are therefore outside every
// thematic basis.
//
// They model the bulk of a general corpus like Wikipedia: text about other
// topics that nevertheless reuses the evaluation vocabulary's surface forms
// ("coach" trains athletes, a "conductor" leads an orchestra, "current"
// denotes a bank account, "precipitation" happens in beakers). This
// off-domain mass dilutes full-space relatedness between in-domain terms —
// the noise the paper's thematic projection removes.
func DistractorDomains() []Domain {
	return distractorDomains
}

// AllDomains returns the evaluation domains followed by the distractor
// domains: the full corpus vocabulary.
func AllDomains() []Domain {
	out := make([]Domain, 0, len(domains)+len(distractorDomains))
	out = append(out, domains...)
	out = append(out, distractorDomains...)
	return out
}

var distractorDomains = []Domain{
	{
		Name: "sport",
		TopTerms: []string{
			"competitive sport", "athletics events", "sports training",
			"league competition",
		},
		Context: []string{
			"athlete", "tournament", "medal", "referee", "season ticket",
			"stadium", "supporters", "fixture", "transfer", "warmup",
		},
		Concepts: []Concept{
			{
				Label:    "training coach",
				Synonyms: []string{"coach", "head coach", "trainer"},
				Related:  []string{"training plan", "drill", "fitness", "squad"},
			},
			{
				Label:    "race pace",
				Synonyms: []string{"pace", "running speed", "tempo", "speed"},
				Related:  []string{"split time", "marathon", "personal best", "pacer"},
			},
			{
				Label:    "qualifying heat",
				Synonyms: []string{"heat", "preliminary round", "qualifier"},
				Related:  []string{"lane draw", "semifinal", "false start"},
			},
			{
				Label:    "running track",
				Synonyms: []string{"track", "athletics track", "oval"},
				Related:  []string{"lap", "starting block", "relay", "hurdle"},
			},
			{
				Label:    "championship class",
				Synonyms: []string{"class", "division", "weight class"},
				Related:  []string{"promotion", "relegation", "ranking points"},
			},
			{
				Label:    "power lifting",
				Synonyms: []string{"weightlifting", "power training", "strength sport"},
				Related:  []string{"barbell", "deadlift", "snatch", "power"},
			},
			{
				Label:    "cycling race",
				Synonyms: []string{"cycle race", "bike race", "cycling event"},
				Related:  []string{"peloton", "sprint finish", "time trial", "cycle"},
			},
			{
				Label:    "record attempt",
				Synonyms: []string{"record", "world record", "best mark"},
				Related:  []string{"measurement", "official", "ratification"},
			},
		},
	},
	{
		Name: "music",
		TopTerms: []string{
			"music performance", "musical composition", "concert season",
			"music recording",
		},
		Context: []string{
			"melody", "harmony", "audience", "encore", "rehearsal",
			"score sheet", "ensemble", "soloist", "tour", "acoustics",
		},
		Concepts: []Concept{
			{
				Label:    "orchestra conductor",
				Synonyms: []string{"conductor", "maestro", "music director"},
				Related:  []string{"baton", "podium", "symphony", "downbeat"},
			},
			{
				Label:    "musical meter",
				Synonyms: []string{"meter", "time signature", "rhythm"},
				Related:  []string{"beat", "bar", "tempo marking", "syncopation"},
			},
			{
				Label:    "keyboard instrument",
				Synonyms: []string{"keyboard", "piano", "organ"},
				Related:  []string{"pedal board", "keys", "tuning", "grand piano"},
			},
			{
				Label:    "bass line",
				Synonyms: []string{"bass", "bassline", "low register"},
				Related:  []string{"double bass", "groove", "amplifier"},
			},
			{
				Label:    "light show",
				Synonyms: []string{"stage lighting", "illumination", "lighting design"},
				Related:  []string{"spotlight", "strobe", "dimmer", "light"},
			},
			{
				Label:    "radio static",
				Synonyms: []string{"static", "crackle", "radio noise"},
				Related:  []string{"frequency drift", "tuning dial", "noise"},
			},
			{
				Label:    "concert platform",
				Synonyms: []string{"platform", "stage", "bandstand stage"},
				Related:  []string{"curtain", "backstage", "riser"},
			},
			{
				Label:    "music class",
				Synonyms: []string{"music lesson", "conservatory class", "class"},
				Related:  []string{"etude", "scales", "recital", "lesson"},
			},
		},
	},
	{
		Name: "finance",
		TopTerms: []string{
			"financial markets", "banking services", "investment policy",
			"corporate finance",
		},
		Context: []string{
			"portfolio", "dividend", "broker", "ledger", "audit report",
			"asset", "liability", "quarterly results", "shareholder",
		},
		Concepts: []Concept{
			{
				Label:    "current account",
				Synonyms: []string{"checking account", "demand account", "current"},
				Related:  []string{"overdraft", "balance", "statement", "deposit"},
			},
			{
				Label:    "bank charge",
				Synonyms: []string{"charge", "banking fee", "account fee"},
				Related:  []string{"penalty", "transaction cost", "fee schedule", "fee"},
			},
			{
				Label:    "energy market",
				Synonyms: []string{"power market", "electricity market", "commodity energy"},
				Related:  []string{"futures", "spot price", "hedging", "energy"},
			},
			{
				Label:    "stock exchange",
				Synonyms: []string{"bourse", "securities exchange", "exchange"},
				Related:  []string{"ticker", "listing", "index", "trading floor"},
			},
			{
				Label:    "interest rate",
				Synonyms: []string{"rate", "lending rate", "base rate"},
				Related:  []string{"basis point", "central bank", "yield"},
			},
			{
				Label:    "capital flow",
				Synonyms: []string{"capital movement", "investment flow", "fund flow"},
				Related:  []string{"inflow", "outflow", "liquidity", "flow"},
			},
			{
				Label:    "credit class",
				Synonyms: []string{"credit rating", "rating class", "credit grade"},
				Related:  []string{"default risk", "bond grade", "class"},
			},
			{
				Label:    "unit trust",
				Synonyms: []string{"mutual fund", "investment unit", "fund unit"},
				Related:  []string{"net asset value", "unit price", "unit"},
			},
		},
	},
	{
		Name: "science",
		TopTerms: []string{
			"laboratory science", "physical chemistry", "experimental method",
			"scientific publication",
		},
		Context: []string{
			"experiment", "hypothesis", "beaker", "reagent", "microscope",
			"peer review", "apparatus", "observation", "sample tube",
		},
		Concepts: []Concept{
			{
				Label:    "chemical precipitation",
				Synonyms: []string{"precipitation", "precipitate formation", "settling reaction"},
				Related:  []string{"solution", "filtrate", "crystallization", "solubility"},
			},
			{
				Label:    "biological cell",
				Synonyms: []string{"cell", "living cell", "cell culture"},
				Related:  []string{"membrane", "nucleus", "mitosis", "cytoplasm"},
			},
			{
				Label:    "plant biology",
				Synonyms: []string{"plant", "botany specimen", "plant tissue"},
				Related:  []string{"chlorophyll", "stoma", "xylem", "photosynthesis"},
			},
			{
				Label:    "thermal conduction",
				Synonyms: []string{"conduction", "heat conduction", "conductor"},
				Related:  []string{"thermal gradient", "insulator", "heat transfer"},
			},
			{
				Label:    "gas pressure",
				Synonyms: []string{"pressure", "partial pressure", "vapor pressure"},
				Related:  []string{"manometer", "ideal gas", "compression"},
			},
			{
				Label:    "electric charge",
				Synonyms: []string{"charge", "static charge", "elementary charge"},
				Related:  []string{"coulomb", "electron", "field", "polarity"},
			},
			{
				Label:    "radiation physics",
				Synonyms: []string{"radiation", "emission spectrum", "radiant energy"},
				Related:  []string{"wavelength", "photon", "decay", "half life"},
			},
			{
				Label:    "specimen current",
				Synonyms: []string{"current", "beam current", "probe current"},
				Related:  []string{"electron beam", "detector", "measurement error"},
			},
			{
				Label:    "memory experiment",
				Synonyms: []string{"memory", "recall test", "memory study"},
				Related:  []string{"stimulus", "participant", "retention", "cognition"},
			},
		},
	},
}
