package vocab

import (
	"strings"
	"testing"

	"thematicep/internal/text"
)

func TestDomainsMatchPaperList(t *testing.T) {
	ds := Domains()
	names := DomainNames()
	if len(ds) != 6 || len(names) != 6 {
		t.Fatalf("want 6 domains, got %d (names %d)", len(ds), len(names))
	}
	for i, d := range ds {
		if d.Name != names[i] {
			t.Errorf("domain %d = %q, want %q", i, d.Name, names[i])
		}
	}
}

func TestDomainByName(t *testing.T) {
	d, ok := DomainByName("energy")
	if !ok || d.Name != "energy" {
		t.Fatalf("DomainByName(energy) = %v, %v", d.Name, ok)
	}
	if _, ok := DomainByName("astrology"); ok {
		t.Error("DomainByName(astrology) should not exist")
	}
}

func TestEveryDomainIsWellFormed(t *testing.T) {
	for _, d := range Domains() {
		t.Run(d.Name, func(t *testing.T) {
			if len(d.TopTerms) < 4 {
				t.Errorf("too few top terms: %d", len(d.TopTerms))
			}
			if len(d.Concepts) < 10 {
				t.Errorf("too few concepts: %d", len(d.Concepts))
			}
			seen := make(map[string]bool)
			for _, c := range d.Concepts {
				if c.Label == "" {
					t.Error("concept with empty label")
				}
				if len(c.Synonyms) < 2 {
					t.Errorf("concept %q has %d synonyms, want >= 2 for semantic expansion", c.Label, len(c.Synonyms))
				}
				if seen[c.Label] {
					t.Errorf("duplicate concept label %q within domain", c.Label)
				}
				seen[c.Label] = true
				for _, s := range c.Synonyms {
					if s == c.Label {
						t.Errorf("concept %q lists itself as a synonym", c.Label)
					}
				}
			}
		})
	}
}

func TestTermsIncludesLabelAndSynonyms(t *testing.T) {
	c := Concept{Label: "a", Synonyms: []string{"b", "c"}}
	got := c.Terms()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Terms = %v", got)
	}
}

// The disambiguation mechanism requires terms that appear in concepts of
// more than one domain. Verify the homographs the design depends on exist.
func TestCrossDomainHomographsExist(t *testing.T) {
	// term -> the two domains it must appear in
	homographs := map[string][2]string{
		"park":    {"transport", "geography"},
		"coach":   {"transport", "education and communications"},
		"current": {"energy", "environment"},
		"cell":    {"energy", "education and communications"},
		"class":   {"education and communications", "social questions"},
		"charge":  {"energy", "social questions"},
		"memory":  {"education and communications", "education and communications"},
		"plant":   {"energy", "environment"},
	}
	domainTerms := make(map[string]map[string]bool) // domain -> token set
	for _, d := range Domains() {
		toks := make(map[string]bool)
		for _, c := range d.Concepts {
			for _, term := range c.Terms() {
				for _, tok := range text.Tokenize(term) {
					toks[tok] = true
				}
			}
		}
		domainTerms[d.Name] = toks
	}
	for term, doms := range homographs {
		for _, dom := range [2]string{doms[0], doms[1]} {
			if !domainTerms[dom][term] {
				t.Errorf("homograph %q missing from domain %q", term, dom)
			}
		}
	}
}

func TestSensorCapabilitiesMatchTable3(t *testing.T) {
	caps := SensorCapabilities()
	if len(caps) != 22 {
		t.Fatalf("Table 3 has 22 capabilities, got %d", len(caps))
	}
	for _, want := range []string{"energy consumption", "parking", "no2", "cpu usage"} {
		found := false
		for _, c := range caps {
			if c == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("capability %q missing", want)
		}
	}
}

func TestUnitsCoverAllCapabilities(t *testing.T) {
	units := Units()
	for _, c := range SensorCapabilities() {
		if units[c] == "" {
			t.Errorf("no unit for capability %q", c)
		}
	}
	if len(units) != len(SensorCapabilities()) {
		t.Errorf("units has %d entries, capabilities %d", len(units), len(SensorCapabilities()))
	}
}

func TestEventTypeFor(t *testing.T) {
	got := EventTypeFor("energy consumption", "increased")
	if got != "increased energy consumption event" {
		t.Errorf("EventTypeFor = %q", got)
	}
}

func TestDatasetsNonEmptyAndLowercase(t *testing.T) {
	sets := map[string][]string{
		"Appliances": Appliances(),
		"CarBrands":  CarBrands(),
		"Rooms":      Rooms(),
		"Desks":      Desks(),
		"Floors":     Floors(),
		"Zones":      Zones(),
		"Cities":     Cities(),
		"Countries":  Countries(),
		"Continents": Continents(),
		"Streets":    Streets(),
		"Trends":     Trends(),
	}
	for name, set := range sets {
		if len(set) == 0 {
			t.Errorf("%s is empty", name)
		}
		for _, s := range set {
			if s != strings.ToLower(s) {
				t.Errorf("%s entry %q is not lowercase", name, s)
			}
		}
	}
}

// Every capability must be resolvable in some domain concept so that
// semantic expansion can rewrite it: it is either a concept label or a
// synonym somewhere.
func TestCapabilitiesAreInVocabulary(t *testing.T) {
	known := make(map[string]bool)
	for _, d := range Domains() {
		for _, c := range d.Concepts {
			for _, term := range c.Terms() {
				known[term] = true
			}
		}
	}
	for _, c := range SensorCapabilities() {
		if !known[c] {
			t.Errorf("capability %q is not a term of any domain concept", c)
		}
	}
}
