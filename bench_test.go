package thematicep_test

// Benchmarks regenerating the paper's evaluation artifacts (DESIGN.md §3).
// Each table/figure has a bench whose name carries the experiment id; run
//
//	go test -bench=. -benchmem
//
// Benches report events/sec (the paper's throughput metric) via
// b.ReportMetric in addition to ns/op. cmd/repro produces the F1 numbers;
// benches focus on the time-efficiency half of the evaluation plus the
// ablations of DESIGN.md §4.

import (
	"math/rand"
	"sync"
	"testing"

	"thematicep/internal/assign"
	"thematicep/internal/baseline"
	"thematicep/internal/broker"
	"thematicep/internal/corpus"
	"thematicep/internal/event"
	"thematicep/internal/index"
	"thematicep/internal/matcher"
	"thematicep/internal/semantics"
	"thematicep/internal/text"
	"thematicep/internal/workload"
)

// benchEnv is shared, lazily-built state for all benchmarks.
type benchEnv struct {
	ix    *index.Index
	work  *workload.Workload
	combo workload.ThemeCombination
}

var (
	envOnce sync.Once
	env     *benchEnv
)

func benchSetup(b *testing.B) *benchEnv {
	b.Helper()
	envOnce.Do(func() {
		ix := index.Build(corpus.GenerateDefault())
		w := workload.Generate(workload.Config{
			Seed:            7,
			SeedEvents:      60,
			ExpandedPerSeed: 5,
			Subscriptions:   30,
			MaxPredicates:   3,
		})
		rng := rand.New(rand.NewSource(7))
		env = &benchEnv{
			ix:    ix,
			work:  w,
			combo: w.SampleThemes(rng, 5, 10),
		}
	})
	return env
}

// prepareSubs prepares every workload subscription for a matcher (the
// production pattern: subscriptions are long-lived).
func prepareSubs(m *matcher.Matcher, w *workload.Workload) []*matcher.PreparedSubscription {
	out := make([]*matcher.PreparedSubscription, len(w.ApproxSubs))
	for i, s := range w.ApproxSubs {
		out[i] = m.PrepareSubscription(s)
	}
	return out
}

// matchAll matches every prepared subscription against event ei; one call
// is one processed event (the paper's throughput unit).
func matchAll(m *matcher.Matcher, subs []*matcher.PreparedSubscription, w *workload.Workload, ei int) int {
	n := 0
	pe := m.PrepareEvent(w.Events[ei%len(w.Events)])
	for _, ps := range subs {
		if m.ScorePrepared(ps, pe) > 0 {
			n++
		}
	}
	return n
}

// reportEventsPerSec converts ns/op into the paper's events/sec metric.
func reportEventsPerSec(b *testing.B) {
	b.Helper()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "events/sec")
	}
}

// BenchmarkFig7ThematicMatch (E1) processes events with the thematic
// matcher under a mid-grid theme combination; one op = one event matched
// against every subscription.
func BenchmarkFig7ThematicMatch(b *testing.B) {
	e := benchSetup(b)
	e.work.ApplyThemes(e.combo)
	defer e.work.ClearThemes()
	m := matcher.New(semantics.NewSpace(e.ix))
	subs := prepareSubs(m, e.work)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matchAll(m, subs, e.work, i)
	}
	reportEventsPerSec(b)
}

// BenchmarkFig9Throughput (E3) sweeps theme sizes: throughput decreases as
// themes grow (paper Fig. 9), and the diagonal of equal large themes is
// slowest.
func BenchmarkFig9Throughput(b *testing.B) {
	e := benchSetup(b)
	rng := rand.New(rand.NewSource(9))
	for _, sizes := range [][2]int{{2, 5}, {5, 10}, {15, 15}, {30, 30}} {
		combo := e.work.SampleThemes(rng, sizes[0], sizes[1])
		b.Run(benchName("e", sizes[0], "s", sizes[1]), func(b *testing.B) {
			e.work.ApplyThemes(combo)
			defer e.work.ClearThemes()
			m := matcher.New(semantics.NewSpace(e.ix))
			subs := prepareSubs(m, e.work)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matchAll(m, subs, e.work, i)
			}
			reportEventsPerSec(b)
		})
	}
}

// BenchmarkBrokerPublishParallel measures end-to-end Publish throughput on
// the broker's prepared worker-pool path: one op is one event fanned over
// every subscription. The broker's default match parallelism is GOMAXPROCS,
// so `-cpu 1,2,4` sweeps the worker-pool width directly. The semantic
// caches are warmed by a full pass over the event set first — the
// steady-state regime of a long-running broker.
func BenchmarkBrokerPublishParallel(b *testing.B) {
	e := benchSetup(b)
	e.work.ApplyThemes(e.combo)
	defer e.work.ClearThemes()
	m := matcher.New(semantics.NewSpace(e.ix))
	br := broker.New(
		broker.PreparedBatch(m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch),
		broker.WithThreshold(0.3), broker.WithReplayBuffer(0), broker.WithQueueSize(64))
	var wg sync.WaitGroup
	for _, s := range e.work.ApproxSubs {
		sub, err := br.Subscribe(s)
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(c <-chan broker.Delivery) {
			defer wg.Done()
			for range c {
			}
		}(sub.C())
	}
	for _, ev := range e.work.Events {
		if err := br.Publish(ev); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish(e.work.Events[i%len(e.work.Events)]); err != nil {
			b.Fatal(err)
		}
	}
	reportEventsPerSec(b)
	b.StopTimer()
	br.Close()
	wg.Wait()
}

// BenchmarkNonThematicBaseline (E5) is the paper's §5.2.5 baseline: the
// domain-independent measure over the full space.
func BenchmarkNonThematicBaseline(b *testing.B) {
	e := benchSetup(b)
	e.work.ClearThemes()
	m := matcher.New(semantics.NewSpace(e.ix), matcher.WithThematic(false))
	subs := prepareSubs(m, e.work)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matchAll(m, subs, e.work, i)
	}
	reportEventsPerSec(b)
}

// BenchmarkTable1Approaches (E7) compares all four approaches' matching
// cost on the same heterogeneous events.
func BenchmarkTable1Approaches(b *testing.B) {
	e := benchSetup(b)
	rewriter := baseline.NewRewriting(e.work.Thesaurus())
	content := baseline.ContentMatcher{}

	b.Run("content-based", func(b *testing.B) {
		e.work.ClearThemes()
		for i := 0; i < b.N; i++ {
			ev := e.work.Events[i%len(e.work.Events)]
			for _, s := range e.work.ApproxSubs {
				content.Matched(s, ev)
			}
		}
		reportEventsPerSec(b)
	})
	b.Run("concept-rewriting", func(b *testing.B) {
		e.work.ClearThemes()
		for i := 0; i < b.N; i++ {
			ev := e.work.Events[i%len(e.work.Events)]
			for _, s := range e.work.ApproxSubs {
				rewriter.Matched(s, ev)
			}
		}
		reportEventsPerSec(b)
	})
	b.Run("approximate-non-thematic", func(b *testing.B) {
		e.work.ClearThemes()
		m := matcher.New(semantics.NewSpace(e.ix), matcher.WithThematic(false))
		subs := prepareSubs(m, e.work)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			matchAll(m, subs, e.work, i)
		}
		reportEventsPerSec(b)
	})
	b.Run("approximate-thematic", func(b *testing.B) {
		e.work.ApplyThemes(e.combo)
		defer e.work.ClearThemes()
		m := matcher.New(semantics.NewSpace(e.ix))
		subs := prepareSubs(m, e.work)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			matchAll(m, subs, e.work, i)
		}
		reportEventsPerSec(b)
	})
}

// BenchmarkPrecomputedScores (E8) reproduces the prior-work comparison:
// approximate matching with precomputed pairwise scores versus thesaurus
// rewriting. The paper measured ~91,000 vs ~19,100 events/sec.
func BenchmarkPrecomputedScores(b *testing.B) {
	e := benchSetup(b)
	e.work.ClearThemes()

	b.Run("approximate-precomputed", func(b *testing.B) {
		space := semantics.NewSpace(e.ix, semantics.WithScoreCache(true))
		precompute(space, e.work)
		m := matcher.New(space, matcher.WithThematic(false))
		subs := prepareSubs(m, e.work)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			matchAll(m, subs, e.work, i)
		}
		reportEventsPerSec(b)
	})
	b.Run("thesaurus-rewriting", func(b *testing.B) {
		rewriter := baseline.NewRewriting(e.work.Thesaurus())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := e.work.Events[i%len(e.work.Events)]
			for _, s := range e.work.ApproxSubs {
				rewriter.Matched(s, ev)
			}
		}
		reportEventsPerSec(b)
	})
}

func precompute(space *semantics.Space, w *workload.Workload) {
	var subTerms, eventTerms []string
	seen := make(map[string]bool)
	addTerm := func(list *[]string, term string) {
		c := text.Canonical(term)
		if !seen[c] {
			seen[c] = true
			*list = append(*list, c)
		}
	}
	for _, s := range w.ApproxSubs {
		for _, p := range s.Predicates {
			addTerm(&subTerms, p.Attr)
			addTerm(&subTerms, p.Value)
		}
	}
	seen = make(map[string]bool)
	for _, ev := range w.Events {
		for _, t := range ev.Tuples {
			addTerm(&eventTerms, t.Attr)
			addTerm(&eventTerms, t.Value)
		}
	}
	space.PrecomputeScores(subTerms, eventTerms)
}

// BenchmarkApproximationSweep (E9): lower degrees of approximation match
// faster (§5.3.2); 100% approximation is the worst case.
func BenchmarkApproximationSweep(b *testing.B) {
	e := benchSetup(b)
	rng := rand.New(rand.NewSource(11))
	for _, degree := range []float64{0, 0.5, 1.0} {
		subs := make([]*event.Subscription, len(e.work.ExactSubs))
		for i, s := range e.work.ExactSubs {
			subs[i] = workload.PartiallyApproximate(s, degree, rng)
		}
		sw := e.work.WithSubscriptions(subs)
		b.Run(benchName("degree", int(degree*100), "", -1), func(b *testing.B) {
			m := matcher.New(semantics.NewSpace(e.ix), matcher.WithThematic(false))
			subs := prepareSubs(m, sw)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matchAll(m, subs, sw, i)
			}
			reportEventsPerSec(b)
		})
	}
}

// BenchmarkTopKMatching measures the §3.5 top-k mode against top-1.
func BenchmarkTopKMatching(b *testing.B) {
	e := benchSetup(b)
	e.work.ApplyThemes(e.combo)
	defer e.work.ClearThemes()
	m := matcher.New(semantics.NewSpace(e.ix))
	sub := e.work.ApproxSubs[0]
	for _, k := range []int{1, 3, 5} {
		b.Run(benchName("k", k, "", -1), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MatchTopK(sub, e.work.Events[i%len(e.work.Events)], k)
			}
		})
	}
}

// BenchmarkAblationIDFRecompute isolates the cost of Algorithm 1's idf
// recomputation (DESIGN.md §4).
func BenchmarkAblationIDFRecompute(b *testing.B) {
	e := benchSetup(b)
	e.work.ApplyThemes(e.combo)
	defer e.work.ClearThemes()
	for _, enabled := range []bool{true, false} {
		name := "with-recompute"
		if !enabled {
			name = "without-recompute"
		}
		b.Run(name, func(b *testing.B) {
			m := matcher.New(semantics.NewSpace(e.ix, semantics.WithIDFRecompute(enabled)))
			subs := prepareSubs(m, e.work)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matchAll(m, subs, e.work, i)
			}
			reportEventsPerSec(b)
		})
	}
}

// BenchmarkAblationDistance compares the Euclidean (paper Eq. 5) and cosine
// measures.
func BenchmarkAblationDistance(b *testing.B) {
	e := benchSetup(b)
	e.work.ApplyThemes(e.combo)
	defer e.work.ClearThemes()
	for _, d := range []struct {
		name string
		dist semantics.Distance
	}{
		{name: "euclidean", dist: semantics.Euclidean},
		{name: "cosine", dist: semantics.Cosine},
	} {
		b.Run(d.name, func(b *testing.B) {
			m := matcher.New(semantics.NewSpace(e.ix, semantics.WithDistance(d.dist)))
			subs := prepareSubs(m, e.work)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matchAll(m, subs, e.work, i)
			}
			reportEventsPerSec(b)
		})
	}
}

// BenchmarkAblationCaches quantifies the projection/vector caches
// (§5.3.2's "caching and indexing" future work).
func BenchmarkAblationCaches(b *testing.B) {
	e := benchSetup(b)
	e.work.ApplyThemes(e.combo)
	defer e.work.ClearThemes()
	for _, enabled := range []bool{true, false} {
		name := "caches-on"
		if !enabled {
			name = "caches-off"
		}
		b.Run(name, func(b *testing.B) {
			m := matcher.New(semantics.NewSpace(e.ix, semantics.WithCaching(enabled)))
			subs := prepareSubs(m, e.work)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matchAll(m, subs, e.work, i)
			}
			reportEventsPerSec(b)
		})
	}
}

// BenchmarkColdStart measures first-match latency on a cold space (§7
// future work): every op pays full vector construction and projection.
func BenchmarkColdStart(b *testing.B) {
	e := benchSetup(b)
	e.work.ApplyThemes(e.combo)
	defer e.work.ClearThemes()
	sub := e.work.ApproxSubs[0]
	ev := e.work.Events[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		space := semantics.NewSpace(e.ix)
		m := matcher.New(space)
		b.StartTimer()
		m.Match(sub, ev)
	}
}

// BenchmarkProjection is a micro-bench of Algorithm 1.
func BenchmarkProjection(b *testing.B) {
	e := benchSetup(b)
	space := semantics.NewSpace(e.ix, semantics.WithCaching(false))
	theme := e.combo.SubTheme
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.Project("energy consumption", theme)
	}
}

// BenchmarkRelatedness is a micro-bench of the parametric measure.
func BenchmarkRelatedness(b *testing.B) {
	e := benchSetup(b)
	space := semantics.NewSpace(e.ix)
	sub := space.Compile(e.combo.SubTheme)
	evt := space.Compile(e.combo.EventTheme)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.RelatednessCompiled("laptop", sub, "computer", evt)
	}
}

// BenchmarkRelatednessWarm is the warm steady-state regime of the
// parametric measure: unit projections cached, so each op is one cached
// lookup plus the allocation-free sparse.NormalizedEuclidean kernel.
// AllocsPerOp must be 0 (also asserted in internal/semantics's
// TestRelatednessWarmZeroAlloc).
func BenchmarkRelatednessWarm(b *testing.B) {
	e := benchSetup(b)
	space := semantics.NewSpace(e.ix)
	sub := space.Compile(e.combo.SubTheme)
	evt := space.Compile(e.combo.EventTheme)
	space.RelatednessCompiled("laptop", sub, "computer", evt) // warm the caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.RelatednessCompiled("laptop", sub, "computer", evt)
	}
}

// BenchmarkBrokerPublishPruned measures Publish throughput with the
// subscription pruning index on versus off, over a mixed population of
// exact and fully approximate subscriptions (exact ones are the prunable
// kind; eval-style 100%-approximate subscriptions always stay candidates).
func BenchmarkBrokerPublishPruned(b *testing.B) {
	e := benchSetup(b)
	e.work.ApplyThemes(e.combo)
	defer e.work.ClearThemes()
	for _, pruning := range []bool{false, true} {
		name := "pruning-off"
		if pruning {
			name = "pruning-on"
		}
		b.Run(name, func(b *testing.B) {
			m := matcher.New(semantics.NewSpace(e.ix))
			br := broker.New(
				broker.PreparedBatch(m.Score, m.PrepareSubscription, m.PrepareEvent, m.ScorePrepared, m.ScoreBatch),
				broker.WithPruning(pruning),
				broker.WithThreshold(0.3), broker.WithReplayBuffer(0), broker.WithQueueSize(64))
			var wg sync.WaitGroup
			subscribe := func(s *event.Subscription) {
				sub, err := br.Subscribe(s)
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func(c <-chan broker.Delivery) {
					defer wg.Done()
					for range c {
					}
				}(sub.C())
			}
			for i := range e.work.ApproxSubs {
				subscribe(e.work.ApproxSubs[i])
				subscribe(e.work.ExactSubs[i])
			}
			for _, ev := range e.work.Events {
				if err := br.Publish(ev); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := br.Publish(e.work.Events[i%len(e.work.Events)]); err != nil {
					b.Fatal(err)
				}
			}
			reportEventsPerSec(b)
			b.StopTimer()
			st := br.Stats()
			if st.Scanned > 0 {
				b.ReportMetric(100*float64(st.Pruned)/float64(st.Scanned+st.Pruned), "%pruned")
			}
			br.Close()
			wg.Wait()
		})
	}
}

// BenchmarkAssignment is a micro-bench of the Hungarian top-1 solver on a
// typical similarity matrix size (3 predicates x 9 tuples).
func BenchmarkAssignment(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	w := make([][]float64, 3)
	for i := range w {
		w[i] = make([]float64, 9)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.Best(w)
	}
}

// BenchmarkIndexBuild measures corpus indexing (cold-start infrastructure).
func BenchmarkIndexBuild(b *testing.B) {
	c := corpus.GenerateDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.Build(c)
	}
}

func benchName(k1 string, v1 int, k2 string, v2 int) string {
	name := k1 + itoa(v1)
	if v2 >= 0 {
		name += "-" + k2 + itoa(v2)
	}
	return name
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
