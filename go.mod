module thematicep

go 1.24
